package metrics

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/job"
	"repro/internal/simclock"
)

// RenderTimeline writes the share-over-time figure as stacked ASCII
// bars, one row per window: each user owns a letter, idle capacity
// (when capacityGPUs > 0) shows as '·'.
//
//	[ 0h– 3h) aaaaaaaaaabbbbbbbbbb····  a:42% b:41%
//
// users determines both the letters (a, b, c, … in order) and the
// legend; width is the bar width in characters (0 means 40).
func RenderTimeline(w io.Writer, tl *Timeline, users []job.UserID, width int, capacityGPUs int) error {
	if width <= 0 {
		width = 40
	}
	letters := make(map[job.UserID]byte, len(users))
	for i, u := range users {
		letters[u] = byte('a' + i%26)
	}

	var b strings.Builder
	b.WriteString("legend:")
	for _, u := range users {
		fmt.Fprintf(&b, " %c=%s", letters[u], u)
	}
	b.WriteString("\n")

	for _, win := range tl.Windows() {
		capGPUSecs := float64(capacityGPUs) * win.End.Sub(win.Start)
		var total float64
		for _, u := range job.SortedUsers(win.ByUser) {
			total += win.ByUser[u]
		}
		denom := total
		if capacityGPUs > 0 {
			denom = capGPUSecs
		}
		fmt.Fprintf(&b, "[%4s–%4s) ", shortTime(win.Start), shortTime(win.End))
		used := 0
		if denom > 0 {
			for _, u := range users {
				n := int(win.ByUser[u] / denom * float64(width))
				b.WriteString(strings.Repeat(string(letters[u]), n))
				used += n
			}
		}
		if used < width {
			b.WriteString(strings.Repeat("·", width-used))
		}
		if total > 0 {
			fr := ShareFractions(win.ByUser)
			for _, u := range users {
				if fr[u] > 0.005 {
					fmt.Fprintf(&b, " %c:%.0f%%", letters[u], 100*fr[u])
				}
			}
		} else {
			b.WriteString(" idle")
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func shortTime(t simclock.Time) string {
	h := float64(t) / 3600
	if h == float64(int(h)) {
		return fmt.Sprintf("%dh", int(h))
	}
	return fmt.Sprintf("%.1fh", h)
}
