package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJain(t *testing.T) {
	if j := Jain([]float64{1, 1, 1, 1}); !almost(j, 1) {
		t.Errorf("equal values → %v, want 1", j)
	}
	if j := Jain([]float64{1, 0, 0, 0}); !almost(j, 0.25) {
		t.Errorf("one-hot → %v, want 1/n", j)
	}
	if j := Jain(nil); j != 0 {
		t.Errorf("empty → %v", j)
	}
	if j := Jain([]float64{0, 0}); j != 0 {
		t.Errorf("all zero → %v", j)
	}
}

func TestJainProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r > 0 {
				anyPos = true
			}
		}
		j := Jain(xs)
		if !anyPos {
			return j == 0
		}
		return j > 0 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) {
		t.Fatalf("Stats = %+v", s)
	}
	if !almost(s.P95, 4.8) {
		t.Errorf("P95 = %v, want 4.8 (interpolated)", s.P95)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty → %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.P95 != 7 {
		t.Errorf("singleton → %+v", one)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestShareFractions(t *testing.T) {
	fr := ShareFractions(map[job.UserID]float64{"a": 30, "b": 10})
	if !almost(fr["a"], 0.75) || !almost(fr["b"], 0.25) {
		t.Errorf("fractions = %v", fr)
	}
	if len(ShareFractions(map[job.UserID]float64{"a": 0})) != 0 {
		t.Error("zero usage → nonempty fractions")
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(3600)
	tl.Add(0, "a", 10)
	tl.Add(1800, "b", 10)
	tl.Add(3600, "a", 20)
	tl.Add(7300, "b", 5)
	ws := tl.Windows()
	if len(ws) != 3 {
		t.Fatalf("%d windows, want 3", len(ws))
	}
	if !almost(ws[0].ByUser["a"], 10) || !almost(ws[0].ByUser["b"], 10) {
		t.Errorf("window 0 = %v", ws[0].ByUser)
	}
	if !almost(ws[1].ByUser["a"], 20) || ws[1].ByUser["b"] != 0 {
		t.Errorf("window 1 = %v", ws[1].ByUser)
	}
	if ws[2].Start != 7200 || ws[2].End != 10800 {
		t.Errorf("window 2 bounds [%v, %v)", ws[2].Start, ws[2].End)
	}
	shares := tl.SharesOver([]job.UserID{"a", "b"})
	if !almost(shares[0][0], 0.5) || !almost(shares[1][0], 1) || !almost(shares[2][1], 1) {
		t.Errorf("shares = %v", shares)
	}
}

func TestTimelinePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width did not panic")
		}
	}()
	NewTimeline(0)
}

func TestUtilization(t *testing.T) {
	u := Utilization{BusyGPUSeconds: 80, CapacityGPUSeconds: 100}
	if !almost(u.Fraction(), 0.8) {
		t.Errorf("Fraction = %v", u.Fraction())
	}
	if (Utilization{}).Fraction() != 0 {
		t.Error("zero capacity → nonzero fraction")
	}
}

func TestSlowdown(t *testing.T) {
	if s := Slowdown(200, 100); !almost(s, 2) {
		t.Errorf("Slowdown = %v", s)
	}
	if !math.IsInf(Slowdown(10, 0), 1) {
		t.Error("zero standalone → not +Inf")
	}
}
