package faults

import (
	"sort"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

// Breaker is the per-server quarantine circuit breaker: a server
// observed failing k times within a sliding window is quarantined —
// excluded from placement and backfill — until a cool-off expires.
// Quarantine is scheduler-side state layered on top of the physical
// timeline: a server can be healthy again (up) yet still quarantined.
//
// State machine per server:
//
//	closed --(k-th failure within window)--> open (quarantined)
//	open   --(cool-off elapsed)-----------> closed, history cleared
//
// Disabled (k == 0) breakers never trip.
type Breaker struct {
	k       int
	window  simclock.Duration
	cooloff simclock.Duration

	history map[gpu.ServerID][]simclock.Time // recent failure times, ascending
	until   map[gpu.ServerID]simclock.Time   // quarantined until, if present
	trips   int
}

// NewBreaker builds a breaker from the config (defaults applied).
func NewBreaker(cfg Config) *Breaker {
	cfg = cfg.WithDefaults()
	return &Breaker{
		k:       cfg.QuarantineFailures,
		window:  cfg.QuarantineWindowHours * simclock.Hour,
		cooloff: cfg.QuarantineCooloffHours * simclock.Hour,
		history: make(map[gpu.ServerID][]simclock.Time),
		until:   make(map[gpu.ServerID]simclock.Time),
	}
}

// NoteFailure records a failure observation for sid at time now and
// reports whether the breaker newly tripped. Failures observed while
// already quarantined extend nothing and are dropped (the server is
// not placeable anyway).
func (b *Breaker) NoteFailure(sid gpu.ServerID, now simclock.Time) bool {
	if b == nil || b.k <= 0 {
		return false
	}
	if _, q := b.until[sid]; q {
		return false
	}
	h := append(b.history[sid], now)
	lo := 0
	for lo < len(h) && h[lo] <= now.Add(-b.window) {
		lo++
	}
	h = h[lo:]
	b.history[sid] = h
	if len(h) < b.k {
		return false
	}
	delete(b.history, sid)
	b.until[sid] = now.Add(b.cooloff)
	b.trips++
	return true
}

// ExpireStep releases servers whose cool-off has elapsed by now and
// returns them in ascending server-ID order. Call once per round
// before noting new failures.
func (b *Breaker) ExpireStep(now simclock.Time) []gpu.ServerID {
	if b == nil || len(b.until) == 0 {
		return nil
	}
	var freed []gpu.ServerID
	for sid, until := range b.until {
		if until <= now {
			freed = append(freed, sid)
		}
	}
	sort.Slice(freed, func(i, j int) bool { return freed[i] < freed[j] })
	for _, sid := range freed {
		delete(b.until, sid)
	}
	return freed
}

// Quarantined reports whether sid is currently quarantined.
func (b *Breaker) Quarantined(sid gpu.ServerID) bool {
	if b == nil {
		return false
	}
	_, q := b.until[sid]
	return q
}

// Set returns the current quarantine set as a fresh map (nil when
// empty).
func (b *Breaker) Set() map[gpu.ServerID]bool {
	if b == nil || len(b.until) == 0 {
		return nil
	}
	m := make(map[gpu.ServerID]bool, len(b.until))
	for sid := range b.until {
		m[sid] = true
	}
	return m
}

// Count returns the number of currently quarantined servers.
func (b *Breaker) Count() int {
	if b == nil {
		return 0
	}
	return len(b.until)
}

// Trips returns the cumulative number of quarantine trips.
func (b *Breaker) Trips() int {
	if b == nil {
		return 0
	}
	return b.trips
}
