package faults

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{
		ServerMTBFHours:   24,
		FlakyServers:      2,
		DegradeMTBFHours:  48,
		JobCrashMTBFHours: 12,
	}
	a, err := Generate(cfg, 8, simclock.Time(7*simclock.Day), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 8, simclock.Time(7*simclock.Day), 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c, err := Generate(cfg, 8, simclock.Time(7*simclock.Day), 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	if len(a.Outages) == 0 {
		t.Fatal("expected some outages over a week at 24h MTBF")
	}
	for i := 1; i < len(a.Outages); i++ {
		p, q := a.Outages[i-1], a.Outages[i]
		if q.At < p.At || (q.At == p.At && q.Server < p.Server) {
			t.Fatalf("outages not sorted at %d", i)
		}
	}
	for _, o := range a.Outages {
		if o.Duration < cfg.WithDefaults().MinOutageSecs {
			t.Fatalf("outage shorter than MinOutageSecs: %v", o.Duration)
		}
		if o.Kind != OutageCrash && o.Kind != OutageFlaky {
			t.Fatalf("unexpected kind %q", o.Kind)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{MigrationFailProb: 2}, 4, simclock.Time(simclock.Day), 1); err == nil {
		t.Fatal("want error for MigrationFailProb > 1")
	}
	if _, err := Generate(Config{ServerMTBFHours: -1}, 4, simclock.Time(simclock.Day), 1); err == nil {
		t.Fatal("want error for negative MTBF")
	}
	if _, err := Generate(Config{}, 0, simclock.Time(simclock.Day), 1); err == nil {
		t.Fatal("want error for zero servers")
	}
	if _, err := Generate(Config{}, 4, 0, 1); err == nil {
		t.Fatal("want error for zero horizon")
	}
}

func TestTimelineMerge(t *testing.T) {
	out := []Outage{
		{Server: 0, At: 100, Duration: 50},
		{Server: 0, At: 120, Duration: 100}, // overlaps previous
		{Server: 0, At: 500, Duration: 10},
		{Server: 1, At: 0, Duration: 10},
	}
	tl := Compile(out, nil, 2)
	if got := len(tl.down[0]); got != 2 {
		t.Fatalf("server 0: want 2 merged spans, got %d: %+v", got, tl.down[0])
	}
	if sp := tl.down[0][0]; sp.From != 100 || sp.To != 220 {
		t.Fatalf("merged span wrong: %+v", sp)
	}
	if !tl.DownAt(0, 150) || tl.DownAt(0, 220) || !tl.DownAt(0, 505) {
		t.Fatal("DownAt lookup wrong")
	}
	if !tl.DownAt(1, 0) || tl.DownAt(1, 10) {
		t.Fatal("half-open interval semantics violated")
	}
	if tl.DownAt(7, 0) { // unknown server
		t.Fatal("unknown server reported down")
	}
}

func TestTimelineDegradationFlatten(t *testing.T) {
	degs := []Degradation{
		{Server: 0, At: 0, Duration: 100, Factor: 0.8},
		{Server: 0, At: 50, Duration: 100, Factor: 0.5}, // overlap: min wins
	}
	tl := Compile(nil, degs, 1)
	if f := tl.FactorAt(0, 25); f != 0.8 {
		t.Fatalf("FactorAt(25) = %v, want 0.8", f)
	}
	if f := tl.FactorAt(0, 75); f != 0.5 {
		t.Fatalf("FactorAt(75) = %v, want 0.5 (min over overlap)", f)
	}
	if f := tl.FactorAt(0, 125); f != 0.5 {
		t.Fatalf("FactorAt(125) = %v, want 0.5", f)
	}
	if f := tl.FactorAt(0, 200); f != 1 {
		t.Fatalf("FactorAt(200) = %v, want 1", f)
	}
}

// TestSweepMatchesLookup cross-checks the monotone Sweep cursor against
// the stateless binary-search reference on a random schedule.
func TestSweepMatchesLookup(t *testing.T) {
	cfg := Config{ServerMTBFHours: 6, ServerOutageMeanHours: 0.5, DegradeMTBFHours: 8, DegradeMeanHours: 1}
	sched, err := Generate(cfg, 6, simclock.Time(3*simclock.Day), 7)
	if err != nil {
		t.Fatal(err)
	}
	tl := Compile(sched.Outages, sched.Degradations, 6)
	sw := NewSweep(tl)
	quantum := 360.0
	for now := simclock.Time(0); now < simclock.Time(3*simclock.Day); now = now.Add(quantum) {
		sw.Advance(now)
		for s := 0; s < 6; s++ {
			sid := gpu.ServerID(s)
			if sw.Down(sid) != tl.DownAt(sid, now) {
				t.Fatalf("t=%v server %d: sweep down=%v lookup=%v", now, s, sw.Down(sid), tl.DownAt(sid, now))
			}
			if sw.Factor(sid) != tl.FactorAt(sid, now) {
				t.Fatalf("t=%v server %d: sweep factor=%v lookup=%v", now, s, sw.Factor(sid), tl.FactorAt(sid, now))
			}
		}
	}
}

func TestSweepTransitions(t *testing.T) {
	out := []Outage{{Server: 1, At: 100, Duration: 200}}
	degs := []Degradation{{Server: 0, At: 150, Duration: 100, Factor: 0.5}}
	tl := Compile(out, degs, 2)
	sw := NewSweep(tl)
	if tr := sw.Advance(0); len(tr) != 0 {
		t.Fatalf("t=0: unexpected transitions %+v", tr)
	}
	tr := sw.Advance(150)
	want := []Transition{
		{Server: 0, Slow: true, Factor: 0.5},
		{Server: 1, Down: true},
	}
	if !reflect.DeepEqual(tr, want) {
		t.Fatalf("t=150 transitions = %+v, want %+v", tr, want)
	}
	tr = sw.Advance(300)
	want = []Transition{
		{Server: 0, Slow: true, Factor: 1},
		{Server: 1, Down: false},
	}
	if !reflect.DeepEqual(tr, want) {
		t.Fatalf("t=300 transitions = %+v, want %+v", tr, want)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(Config{QuarantineFailures: 3, QuarantineWindowHours: 1, QuarantineCooloffHours: 2})
	now := simclock.Time(0)
	if b.NoteFailure(5, now) || b.NoteFailure(5, now.Add(60)) {
		t.Fatal("tripped before k failures")
	}
	if !b.NoteFailure(5, now.Add(120)) {
		t.Fatal("did not trip on k-th failure within window")
	}
	if !b.Quarantined(5) || b.Count() != 1 || b.Trips() != 1 {
		t.Fatal("quarantine state wrong after trip")
	}
	// Failures while quarantined are dropped.
	if b.NoteFailure(5, now.Add(180)) {
		t.Fatal("re-tripped while already quarantined")
	}
	// Not expired before cool-off.
	if freed := b.ExpireStep(now.Add(120 + 2*simclock.Hour - 1)); len(freed) != 0 {
		t.Fatalf("expired early: %v", freed)
	}
	freed := b.ExpireStep(now.Add(120 + 2*simclock.Hour))
	if len(freed) != 1 || freed[0] != 5 {
		t.Fatalf("ExpireStep = %v, want [5]", freed)
	}
	if b.Quarantined(5) || b.Count() != 0 {
		t.Fatal("still quarantined after expiry")
	}
	// History cleared on trip: needs k fresh failures to trip again.
	if b.NoteFailure(5, now.Add(3*simclock.Hour)) {
		t.Fatal("tripped from stale history")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b := NewBreaker(Config{QuarantineFailures: 2, QuarantineWindowHours: 1})
	if b.NoteFailure(0, 0) {
		t.Fatal("tripped on first failure")
	}
	// Second failure outside the window: no trip.
	if b.NoteFailure(0, simclock.Time(2*simclock.Hour)) {
		t.Fatal("tripped across expired window")
	}
	// Third failure within window of the second: trip.
	if !b.NoteFailure(0, simclock.Time(2*simclock.Hour+100)) {
		t.Fatal("did not trip within window")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(Config{})
	for i := 0; i < 10; i++ {
		if b.NoteFailure(1, simclock.Time(i)) {
			t.Fatal("disabled breaker tripped")
		}
	}
	if b.Set() != nil {
		t.Fatal("disabled breaker has quarantine set")
	}
	var nilB *Breaker
	if nilB.Quarantined(0) || nilB.Count() != 0 || nilB.NoteFailure(0, 0) {
		t.Fatal("nil breaker misbehaved")
	}
}

func TestInjectorDeterministicAndDisabled(t *testing.T) {
	cfg := Config{JobCrashMTBFHours: 10, MigrationFailProb: 0.3}
	a := NewInjector(cfg, 360, 99)
	b := NewInjector(cfg, 360, 99)
	for i := 0; i < 1000; i++ {
		if a.CrashNow() != b.CrashNow() || a.MigrationFails() != b.MigrationFails() {
			t.Fatalf("divergence at draw %d", i)
		}
	}
	off := NewInjector(Config{}, 360, 1)
	for i := 0; i < 100; i++ {
		if off.CrashNow() || off.MigrationFails() {
			t.Fatal("disabled injector fired")
		}
	}
	var nilIn *Injector
	if nilIn.CrashNow() || nilIn.MigrationFails() {
		t.Fatal("nil injector fired")
	}
}

func TestInjectorCrashRate(t *testing.T) {
	// MTBF 1h, quantum 360s → p = 1-exp(-0.1) ≈ 0.0952. Check the
	// empirical rate lands in a loose band.
	in := NewInjector(Config{JobCrashMTBFHours: 1}, 360, 7)
	n, hits := 200000, 0
	for i := 0; i < n; i++ {
		if in.CrashNow() {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if rate < 0.085 || rate > 0.105 {
		t.Fatalf("crash rate %v far from expected 0.0952", rate)
	}
}

func TestBackoff(t *testing.T) {
	cfg := Config{MigrationBackoffRounds: 2, MigrationBackoffCapRounds: 16}
	want := []int{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if got := Backoff(cfg, i+1); got != w {
			t.Fatalf("Backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	if Backoff(cfg, 0) != 0 {
		t.Fatal("Backoff(0) should be 0")
	}
}

func TestConfigActive(t *testing.T) {
	if (Config{}).Active() {
		t.Fatal("zero config active")
	}
	for _, c := range []Config{
		{ServerMTBFHours: 1}, {FlakyServers: 1}, {DegradeMTBFHours: 1},
		{JobCrashMTBFHours: 1}, {MigrationFailProb: 0.1}, {QuarantineFailures: 3},
	} {
		if !c.Active() {
			t.Fatalf("config %+v should be active", c)
		}
	}
}

// naiveDown reproduces the engine's old per-round behavior: rescan the
// raw outage list and allocate a fresh map every quantum. Kept as the
// benchmark baseline for the compiled timeline.
func naiveDown(outages []Outage, t simclock.Time) map[gpu.ServerID]bool {
	down := make(map[gpu.ServerID]bool)
	for _, o := range outages {
		if o.At <= t && t < o.At.Add(o.Duration) {
			down[o.Server] = true
		}
	}
	return down
}

func benchSchedule(b *testing.B) (*Schedule, int) {
	b.Helper()
	numServers := 64
	sched, err := Generate(Config{ServerMTBFHours: 12, FlakyServers: 8}, numServers, simclock.Time(30*simclock.Day), 1)
	if err != nil {
		b.Fatal(err)
	}
	return sched, numServers
}

func BenchmarkDownRescan(b *testing.B) {
	sched, numServers := benchSchedule(b)
	quantum := 360.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink int
		for now := simclock.Time(0); now < simclock.Time(30*simclock.Day); now = now.Add(quantum) {
			down := naiveDown(sched.Outages, now)
			sink += len(down)
		}
		_ = sink
		_ = numServers
	}
}

func BenchmarkTimelineSweep(b *testing.B) {
	sched, numServers := benchSchedule(b)
	tl := Compile(sched.Outages, sched.Degradations, numServers)
	quantum := 360.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw := NewSweep(tl)
		var sink int
		for now := simclock.Time(0); now < simclock.Time(30*simclock.Day); now = now.Add(quantum) {
			sink += len(sw.Advance(now))
		}
		_ = sink
	}
}

// TestSweepReferenceRandomized hammers the sweep against the reference
// lookup with random schedules.
func TestSweepReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		var outs []Outage
		var degs []Degradation
		for i := 0; i < rng.Intn(20); i++ {
			outs = append(outs, Outage{
				Server:   gpu.ServerID(rng.Intn(n)),
				At:       simclock.Time(rng.Float64() * 10000),
				Duration: 1 + rng.Float64()*3000,
			})
		}
		for i := 0; i < rng.Intn(10); i++ {
			degs = append(degs, Degradation{
				Server:   gpu.ServerID(rng.Intn(n)),
				At:       simclock.Time(rng.Float64() * 10000),
				Duration: 1 + rng.Float64()*3000,
				Factor:   0.25 + rng.Float64()*0.5,
			})
		}
		tl := Compile(outs, degs, n)
		sw := NewSweep(tl)
		for now := simclock.Time(0); now < 12000; now = now.Add(97) {
			sw.Advance(now)
			for s := 0; s < n; s++ {
				sid := gpu.ServerID(s)
				if sw.Down(sid) != tl.DownAt(sid, now) {
					t.Fatalf("trial %d t=%v server %d down mismatch", trial, now, s)
				}
				if sw.Factor(sid) != tl.FactorAt(sid, now) {
					t.Fatalf("trial %d t=%v server %d factor mismatch", trial, now, s)
				}
			}
		}
	}
}

// TestSweepTransitionsMatchRescanOracle pins the event-driven Advance
// to the old all-server rescan semantics: the transition stream must
// equal a per-sample diff of every server's looked-up state, in
// server-ID order with the down transition before the degradation
// transition per server.
func TestSweepTransitionsMatchRescanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		var outs []Outage
		var degs []Degradation
		for i := 0; i < rng.Intn(15); i++ {
			outs = append(outs, Outage{
				Server:   gpu.ServerID(rng.Intn(n)),
				At:       simclock.Time(rng.Float64() * 8000),
				Duration: 1 + rng.Float64()*2500,
			})
		}
		for i := 0; i < rng.Intn(8); i++ {
			degs = append(degs, Degradation{
				Server:   gpu.ServerID(rng.Intn(n)),
				At:       simclock.Time(rng.Float64() * 8000),
				Duration: 1 + rng.Float64()*2500,
				Factor:   0.25 + rng.Float64()*0.5,
			})
		}
		tl := Compile(outs, degs, n)
		sw := NewSweep(tl)
		prevDown := make([]bool, n)
		prevFactor := make([]float64, n)
		for i := range prevFactor {
			prevFactor[i] = 1
		}
		for now := simclock.Time(0); now < 11000; now = now.Add(113) {
			got := sw.Advance(now)
			var want []Transition
			for s := 0; s < n; s++ {
				sid := gpu.ServerID(s)
				if d := tl.DownAt(sid, now); d != prevDown[s] {
					prevDown[s] = d
					want = append(want, Transition{Server: sid, Down: d})
				}
				if f := tl.FactorAt(sid, now); f != prevFactor[s] {
					prevFactor[s] = f
					want = append(want, Transition{Server: sid, Slow: true, Factor: f})
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d t=%v: transitions %+v, want %+v", trial, now, got, want)
			}
		}
	}
}
