package faults

import "sort"

// RoundInterval is a half-open range of scheduling rounds [From, To).
// The zero value is empty.
type RoundInterval struct {
	From, To int
}

// Empty reports whether the interval covers no round.
func (iv RoundInterval) Empty() bool { return iv.To <= iv.From }

// RoundSet answers "is round r covered?" over a set of round
// intervals, precompiled once into a sorted, merged span list — the
// Timeline/Sweep idea applied to round-indexed schedules (the network
// fault injector keys faults by scheduling round, not simulated
// time). Queries are a binary search, and the compiled form is
// immutable, so one RoundSet may be shared across goroutines.
type RoundSet struct {
	spans []RoundInterval
}

// CompileRounds normalizes ivs (drops empties, sorts, merges
// overlapping and adjacent intervals) into a RoundSet.
func CompileRounds(ivs []RoundInterval) *RoundSet {
	spans := make([]RoundInterval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			spans = append(spans, iv)
		}
	}
	if len(spans) == 0 {
		return &RoundSet{}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].From < spans[j].From })
	out := spans[:1]
	for _, iv := range spans[1:] {
		last := &out[len(out)-1]
		if iv.From <= last.To {
			if iv.To > last.To {
				last.To = iv.To
			}
			continue
		}
		out = append(out, iv)
	}
	return &RoundSet{spans: out}
}

// Active reports whether round r falls inside any compiled interval.
func (s *RoundSet) Active(r int) bool {
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].To > r })
	return i < len(s.spans) && s.spans[i].From <= r
}

// Empty reports whether no round is covered.
func (s *RoundSet) Empty() bool { return len(s.spans) == 0 }

// Bounds returns the first and one-past-last covered round (0,0 when
// empty).
func (s *RoundSet) Bounds() (from, to int) {
	if len(s.spans) == 0 {
		return 0, 0
	}
	return s.spans[0].From, s.spans[len(s.spans)-1].To
}
