// Package faults is the simulator's probabilistic fault model: a
// seeded, deterministic generator of fault schedules (transient server
// crashes, flaky servers, per-GPU degradation), a compiled per-server
// interval timeline the engine queries each round in O(1) amortized
// time, a quarantine circuit breaker that pulls repeatedly failing
// servers out of placement, and an online injector for faults that
// depend on runtime state (job crash-restart, migration failure).
//
// Everything is driven by explicit seeds: the same Config, cluster
// shape, horizon and seed always produce the identical schedule and
// the identical per-round draw stream, so faulted runs replay
// byte-for-byte — the property the soak harness (cmd/gfsoak) asserts.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

// Config tunes the probabilistic fault model. The zero value disables
// every mechanism; each knob enables its mechanism independently.
// Rates are expressed as mean times between events so configs read as
// hardware reliability numbers.
type Config struct {
	// ServerMTBFHours is the per-server mean time between transient
	// crashes (exponential inter-arrival). 0 disables transient
	// crashes.
	ServerMTBFHours float64

	// ServerOutageMeanHours is the mean transient-outage duration
	// (exponential, floored at MinOutageSecs). 0 means 1 hour.
	ServerOutageMeanHours float64

	// FlakyServers designates this many servers (picked
	// deterministically from the seed) as flaky: they suffer repeated
	// short outages. 0 disables flakiness.
	FlakyServers int

	// FlakyMTBFHours is a flaky server's mean time between failures.
	// 0 means 2 hours.
	FlakyMTBFHours float64

	// FlakyOutageMinutes is a flaky server's mean outage duration.
	// 0 means 10 minutes.
	FlakyOutageMinutes float64

	// DegradeMTBFHours is the per-server mean time between GPU
	// degradation episodes (thermal throttling, a sick device slowing
	// the gang). 0 disables degradation.
	DegradeMTBFHours float64

	// DegradeFactor is the throughput multiplier while degraded, in
	// (0, 1]. 0 means 0.5.
	DegradeFactor float64

	// DegradeMeanHours is the mean degradation-episode duration.
	// 0 means 2 hours.
	DegradeMeanHours float64

	// JobCrashMTBFHours is the per-job mean time between crashes while
	// running; a crashed job loses progress back to its last
	// checkpoint and restarts. 0 disables job crashes.
	JobCrashMTBFHours float64

	// CheckpointSecs is the periodic checkpoint interval while a job
	// runs continuously; suspend and migration also checkpoint (the
	// Gandiva mechanism serializes state on both). A crash loses at
	// most this much progress. 0 means 1800 s.
	CheckpointSecs float64

	// MigrationFailProb is the probability one migration attempt
	// fails: the job pays the migration cost, stays put, and retries
	// under capped exponential backoff. 0 disables.
	MigrationFailProb float64

	// MigrationBackoffRounds is the backoff after the first failed
	// migration, in scheduling rounds; it doubles per consecutive
	// failure up to MigrationBackoffCapRounds. Zeros mean 2 and 32.
	MigrationBackoffRounds    int
	MigrationBackoffCapRounds int

	// QuarantineFailures is the circuit-breaker threshold: a server
	// observed failing this many times within QuarantineWindowHours is
	// quarantined (excluded from placement and backfill) for
	// QuarantineCooloffHours. 0 disables quarantine.
	QuarantineFailures int

	// QuarantineWindowHours is the sliding failure-counting window.
	// 0 means 2 hours.
	QuarantineWindowHours float64

	// QuarantineCooloffHours is how long a tripped server stays
	// excluded. 0 means 4 hours.
	QuarantineCooloffHours float64

	// MinOutageSecs floors generated outage durations so an outage is
	// observable at round granularity. 0 means 360 s.
	MinOutageSecs float64
}

// WithDefaults returns the config with zero knobs replaced by their
// documented defaults. Enablement flags (MTBFs, probabilities, counts
// that are zero) are left untouched.
func (c Config) WithDefaults() Config {
	if c.ServerOutageMeanHours == 0 {
		c.ServerOutageMeanHours = 1
	}
	if c.FlakyMTBFHours == 0 {
		c.FlakyMTBFHours = 2
	}
	if c.FlakyOutageMinutes == 0 {
		c.FlakyOutageMinutes = 10
	}
	if c.DegradeFactor == 0 {
		c.DegradeFactor = 0.5
	}
	if c.DegradeMeanHours == 0 {
		c.DegradeMeanHours = 2
	}
	if c.CheckpointSecs == 0 {
		c.CheckpointSecs = 1800
	}
	if c.MigrationBackoffRounds == 0 {
		c.MigrationBackoffRounds = 2
	}
	if c.MigrationBackoffCapRounds == 0 {
		c.MigrationBackoffCapRounds = 32
	}
	if c.QuarantineWindowHours == 0 {
		c.QuarantineWindowHours = 2
	}
	if c.QuarantineCooloffHours == 0 {
		c.QuarantineCooloffHours = 4
	}
	if c.MinOutageSecs == 0 {
		c.MinOutageSecs = 360
	}
	return c
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.ServerMTBFHours < 0 || c.ServerOutageMeanHours < 0 ||
		c.FlakyMTBFHours < 0 || c.FlakyOutageMinutes < 0 ||
		c.DegradeMTBFHours < 0 || c.DegradeMeanHours < 0 ||
		c.JobCrashMTBFHours < 0 || c.CheckpointSecs < 0 || c.MinOutageSecs < 0 ||
		c.QuarantineWindowHours < 0 || c.QuarantineCooloffHours < 0 {
		return fmt.Errorf("faults: negative duration or rate")
	}
	if c.FlakyServers < 0 {
		return fmt.Errorf("faults: negative FlakyServers")
	}
	if c.MigrationFailProb < 0 || c.MigrationFailProb > 1 {
		return fmt.Errorf("faults: MigrationFailProb %v outside [0,1]", c.MigrationFailProb)
	}
	if c.MigrationBackoffRounds < 0 || c.MigrationBackoffCapRounds < 0 {
		return fmt.Errorf("faults: negative migration backoff")
	}
	if c.QuarantineFailures < 0 {
		return fmt.Errorf("faults: negative QuarantineFailures")
	}
	if c.DegradeFactor < 0 || c.DegradeFactor > 1 {
		return fmt.Errorf("faults: DegradeFactor %v outside (0,1]", c.DegradeFactor)
	}
	return nil
}

// Active reports whether any probabilistic mechanism is enabled (the
// engine creates fault state only when true or when a quarantine
// threshold is set).
func (c Config) Active() bool {
	return c.ServerMTBFHours > 0 || c.FlakyServers > 0 || c.DegradeMTBFHours > 0 ||
		c.JobCrashMTBFHours > 0 || c.MigrationFailProb > 0 || c.QuarantineFailures > 0
}

// Outage kinds as recorded in generated schedules.
const (
	OutageDeclared = "declared" // from core.Config.Failures
	OutageCrash    = "crash"    // generated transient crash
	OutageFlaky    = "flaky"    // generated flaky-server burst
)

// Outage is one server-down interval.
type Outage struct {
	Server   gpu.ServerID
	At       simclock.Time
	Duration simclock.Duration
	Kind     string
}

// Degradation is one slowed-server interval: jobs running any GPU of
// the server progress at Factor of their healthy rate.
type Degradation struct {
	Server   gpu.ServerID
	At       simclock.Time
	Duration simclock.Duration
	Factor   float64
}

// Schedule is a fully materialized fault schedule: every interval is
// known up front, so the same schedule replays identically.
type Schedule struct {
	Outages      []Outage
	Degradations []Degradation
}

// Generate materializes the probabilistic part of a schedule for a
// cluster of numServers over [0, horizon) from a seed. The same
// inputs always yield the identical schedule: servers are visited in
// ID order and each mechanism draws from the single seeded stream in
// a fixed sequence.
func Generate(cfg Config, numServers int, horizon simclock.Time, seed int64) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numServers <= 0 {
		return nil, fmt.Errorf("faults: numServers %d must be positive", numServers)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("faults: non-positive horizon")
	}
	cfg = cfg.WithDefaults()
	// Distinct stream from the profiler's (which seeds rand.NewSource
	// with the raw scenario seed).
	rng := rand.New(rand.NewSource(seed ^ 0x5fa77db4c3e19a71))
	sched := &Schedule{}

	if cfg.ServerMTBFHours > 0 {
		mtbf := cfg.ServerMTBFHours * simclock.Hour
		mean := cfg.ServerOutageMeanHours * simclock.Hour
		for s := 0; s < numServers; s++ {
			t := simclock.Time(rng.ExpFloat64() * mtbf)
			for t < horizon {
				dur := math.Max(cfg.MinOutageSecs, rng.ExpFloat64()*mean)
				sched.Outages = append(sched.Outages, Outage{
					Server: gpu.ServerID(s), At: t, Duration: dur, Kind: OutageCrash,
				})
				t = t.Add(dur + rng.ExpFloat64()*mtbf)
			}
		}
	}

	if cfg.FlakyServers > 0 {
		n := cfg.FlakyServers
		if n > numServers {
			n = numServers
		}
		flaky := rng.Perm(numServers)[:n]
		sort.Ints(flaky)
		mtbf := cfg.FlakyMTBFHours * simclock.Hour
		mean := cfg.FlakyOutageMinutes * 60
		for _, s := range flaky {
			t := simclock.Time(rng.ExpFloat64() * mtbf)
			for t < horizon {
				dur := math.Max(cfg.MinOutageSecs, rng.ExpFloat64()*mean)
				sched.Outages = append(sched.Outages, Outage{
					Server: gpu.ServerID(s), At: t, Duration: dur, Kind: OutageFlaky,
				})
				t = t.Add(dur + rng.ExpFloat64()*mtbf)
			}
		}
	}

	if cfg.DegradeMTBFHours > 0 && cfg.DegradeFactor < 1 {
		mtbf := cfg.DegradeMTBFHours * simclock.Hour
		mean := cfg.DegradeMeanHours * simclock.Hour
		for s := 0; s < numServers; s++ {
			t := simclock.Time(rng.ExpFloat64() * mtbf)
			for t < horizon {
				dur := math.Max(cfg.MinOutageSecs, rng.ExpFloat64()*mean)
				sched.Degradations = append(sched.Degradations, Degradation{
					Server: gpu.ServerID(s), At: t, Duration: dur, Factor: cfg.DegradeFactor,
				})
				t = t.Add(dur + rng.ExpFloat64()*mtbf)
			}
		}
	}

	sortOutages(sched.Outages)
	sortDegradations(sched.Degradations)
	return sched, nil
}

func sortOutages(o []Outage) {
	sort.Slice(o, func(i, j int) bool {
		if o[i].At != o[j].At {
			return o[i].At < o[j].At
		}
		return o[i].Server < o[j].Server
	})
}

func sortDegradations(d []Degradation) {
	sort.Slice(d, func(i, j int) bool {
		if d[i].At != d[j].At {
			return d[i].At < d[j].At
		}
		return d[i].Server < d[j].Server
	})
}

// Injector draws the runtime-dependent faults — job crashes and
// migration failures — from one seeded stream. The engine calls it in
// a deterministic order (sorted job IDs, sorted migration lists), so
// with a fixed seed every run consumes the identical sample sequence.
type Injector struct {
	rng        *rand.Rand
	crashProb  float64 // per running job per round
	migFailPro float64
}

// NewInjector builds the injector for one run. quantum converts the
// crash MTBF into a per-round Bernoulli probability:
// p = 1 − exp(−quantum/MTBF).
func NewInjector(cfg Config, quantum simclock.Duration, seed int64) *Injector {
	cfg = cfg.WithDefaults()
	in := &Injector{
		rng:        rand.New(rand.NewSource(seed ^ 0x2b1cd9a85e7f3641)),
		migFailPro: cfg.MigrationFailProb,
	}
	if cfg.JobCrashMTBFHours > 0 && quantum > 0 {
		in.crashProb = 1 - math.Exp(-quantum/(cfg.JobCrashMTBFHours*simclock.Hour))
	}
	return in
}

// CrashNow draws whether one running job crashes this round. No draw
// is consumed when job crashes are disabled.
func (in *Injector) CrashNow() bool {
	if in == nil || in.crashProb <= 0 {
		return false
	}
	return in.rng.Float64() < in.crashProb
}

// MigrationFails draws whether one migration attempt fails. No draw
// is consumed when migration failures are disabled.
func (in *Injector) MigrationFails() bool {
	if in == nil || in.migFailPro <= 0 {
		return false
	}
	return in.rng.Float64() < in.migFailPro
}

// Backoff returns the migration-retry delay in rounds after the n-th
// consecutive failed attempt (n ≥ 1): base·2^(n−1), capped.
func Backoff(cfg Config, n int) int {
	cfg = cfg.WithDefaults()
	if n <= 0 {
		return 0
	}
	d := cfg.MigrationBackoffRounds
	for i := 1; i < n; i++ {
		d *= 2
		if d >= cfg.MigrationBackoffCapRounds {
			return cfg.MigrationBackoffCapRounds
		}
	}
	if d > cfg.MigrationBackoffCapRounds {
		d = cfg.MigrationBackoffCapRounds
	}
	return d
}
