package faults

import (
	"sort"

	"repro/internal/gpu"
	"repro/internal/simclock"
)

// span is one half-open interval [From, To) on the simulated clock.
type span struct {
	From, To simclock.Time
	Factor   float64 // degradation factor; unused (0) for down spans
}

// Timeline is the compiled form of a fault schedule: per-server sorted,
// merged interval lists. Compiling once at simulation start replaces
// the old per-round rescan of the raw failure list (see
// BenchmarkDownRescan vs BenchmarkTimelineSweep) and gives the engine
// O(1)-amortized queries through a Sweep cursor.
type Timeline struct {
	down [][]span // indexed by server ID
	slow [][]span
}

// Compile builds a Timeline for servers 0..numServers-1. Outages on
// unknown servers are ignored (declared schedules are validated
// upstream). Overlapping or adjacent down spans per server are merged;
// overlapping degradations are flattened to disjoint spans keeping the
// minimum (worst) factor.
func Compile(outages []Outage, degradations []Degradation, numServers int) *Timeline {
	tl := &Timeline{
		down: make([][]span, numServers),
		slow: make([][]span, numServers),
	}
	for _, o := range outages {
		s := int(o.Server)
		if s < 0 || s >= numServers || o.Duration <= 0 {
			continue
		}
		tl.down[s] = append(tl.down[s], span{From: o.At, To: o.At.Add(o.Duration)})
	}
	for s := range tl.down {
		tl.down[s] = mergeSpans(tl.down[s])
	}
	for _, d := range degradations {
		s := int(d.Server)
		if s < 0 || s >= numServers || d.Duration <= 0 || d.Factor <= 0 || d.Factor >= 1 {
			continue
		}
		tl.slow[s] = append(tl.slow[s], span{From: d.At, To: d.At.Add(d.Duration), Factor: d.Factor})
	}
	for s := range tl.slow {
		tl.slow[s] = flattenDegradations(tl.slow[s])
	}
	return tl
}

// mergeSpans sorts and merges overlapping/adjacent spans.
func mergeSpans(in []span) []span {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].From < in[j].From })
	out := in[:1]
	for _, sp := range in[1:] {
		last := &out[len(out)-1]
		if sp.From <= last.To {
			if sp.To > last.To {
				last.To = sp.To
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// flattenDegradations converts possibly overlapping factored spans into
// disjoint sorted spans carrying the minimum factor over the overlap.
func flattenDegradations(in []span) []span {
	if len(in) == 0 {
		return nil
	}
	// Collect boundary points, then for each elementary interval take
	// the min factor over covering spans. Span counts per server are
	// small; the O(n²) scan keeps the code simple and is compile-time
	// only.
	pts := make([]simclock.Time, 0, 2*len(in))
	for _, sp := range in {
		pts = append(pts, sp.From, sp.To)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	var out []span
	for i := 0; i+1 < len(pts); i++ {
		from, to := pts[i], pts[i+1]
		if to <= from {
			continue
		}
		factor := 1.0
		for _, sp := range in {
			if sp.From <= from && to <= sp.To && sp.Factor < factor {
				factor = sp.Factor
			}
		}
		if factor >= 1 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].To == from && out[n-1].Factor == factor {
			out[n-1].To = to
			continue
		}
		out = append(out, span{From: from, To: to, Factor: factor})
	}
	return out
}

// DownAt reports whether server sid is down at time t (binary search;
// used off the hot path and in tests as the reference for Sweep).
func (tl *Timeline) DownAt(sid gpu.ServerID, t simclock.Time) bool {
	return lookup(tl.spansDown(sid), t) != nil
}

// FactorAt returns the degradation factor of server sid at time t
// (1 when healthy).
func (tl *Timeline) FactorAt(sid gpu.ServerID, t simclock.Time) float64 {
	if sp := lookup(tl.spansSlow(sid), t); sp != nil {
		return sp.Factor
	}
	return 1
}

func (tl *Timeline) spansDown(sid gpu.ServerID) []span {
	if int(sid) < 0 || int(sid) >= len(tl.down) {
		return nil
	}
	return tl.down[sid]
}

func (tl *Timeline) spansSlow(sid gpu.ServerID) []span {
	if int(sid) < 0 || int(sid) >= len(tl.slow) {
		return nil
	}
	return tl.slow[sid]
}

func lookup(spans []span, t simclock.Time) *span {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].To > t })
	if i < len(spans) && spans[i].From <= t {
		return &spans[i]
	}
	return nil
}

// Sweep is a monotone cursor over a Timeline. The engine samples server
// state once per round boundary with strictly increasing timestamps.
// A precomputed global list of span boundaries (every From and To,
// sorted by time) drives each sample: Advance pops the boundaries that
// became due, and only the touched servers are re-examined — a server
// whose spans have no boundary in (lastTime, t] cannot have changed
// state. A full-horizon run therefore costs O(boundaries) total,
// independent of both the round count and the server count, where the
// previous implementation walked every server's cursor every round.
// Sampling at round boundaries keeps the semantics of the original
// rescan: an outage strictly inside a quantum (starting and ending
// between two samples) is invisible.
type Sweep struct {
	tl       *Timeline
	downIdx  []int
	slowIdx  []int
	isDown   []bool
	factor   []float64
	lastTime simclock.Time
	started  bool

	// boundaries is the merged, time-sorted list of every span edge;
	// evIdx is the pop cursor. touched is scratch for one Advance.
	boundaries []boundary
	evIdx      int
	touched    []int32
}

// boundary is one span edge: at this time, this server may change
// state.
type boundary struct {
	at  simclock.Time
	srv int32
}

// NewSweep creates a cursor positioned before time zero.
func NewSweep(tl *Timeline) *Sweep {
	n := len(tl.down)
	sw := &Sweep{
		tl:      tl,
		downIdx: make([]int, n),
		slowIdx: make([]int, n),
		isDown:  make([]bool, n),
		factor:  make([]float64, n),
	}
	for i := range sw.factor {
		sw.factor[i] = 1
	}
	for s := 0; s < n; s++ {
		for _, sp := range tl.down[s] {
			sw.boundaries = append(sw.boundaries, boundary{sp.From, int32(s)}, boundary{sp.To, int32(s)})
		}
		for _, sp := range tl.slow[s] {
			sw.boundaries = append(sw.boundaries, boundary{sp.From, int32(s)}, boundary{sp.To, int32(s)})
		}
	}
	sort.Slice(sw.boundaries, func(i, j int) bool {
		if sw.boundaries[i].at != sw.boundaries[j].at {
			return sw.boundaries[i].at < sw.boundaries[j].at
		}
		return sw.boundaries[i].srv < sw.boundaries[j].srv
	})
	return sw
}

// NextAt returns the time of the next pending span boundary, or
// ok=false when the schedule is exhausted. The engine's event cursor
// uses it to reason about when fault state can next change.
func (sw *Sweep) NextAt() (simclock.Time, bool) {
	if sw.evIdx >= len(sw.boundaries) {
		return 0, false
	}
	return sw.boundaries[sw.evIdx].at, true
}

// Transition describes one server changing state between two samples.
type Transition struct {
	Server gpu.ServerID
	Down   bool    // new down state (down / recovered)
	Slow   bool    // true when this is a degradation transition
	Factor float64 // new factor (1 = healthy) when Slow
}

// Advance moves the cursor to time t (must be ≥ the previous sample)
// and returns the state transitions since the last sample, in server-ID
// order with down transitions before degradation transitions per
// server. The first call reports every server that is already down or
// degraded at t.
func (sw *Sweep) Advance(t simclock.Time) []Transition {
	if sw.started && t < sw.lastTime {
		panic("faults: Sweep.Advance called with decreasing time")
	}
	sw.started = true
	sw.lastTime = t

	// Pop the boundaries that became due; only their servers can have
	// changed state since the last sample. A span active at the very
	// first sample is covered too: its From edge is ≤ t, so its server
	// is touched.
	touched := sw.touched[:0]
	for sw.evIdx < len(sw.boundaries) && sw.boundaries[sw.evIdx].at <= t {
		touched = append(touched, sw.boundaries[sw.evIdx].srv)
		sw.evIdx++
	}
	sw.touched = touched
	if len(touched) == 0 {
		return nil
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })

	// Re-examine touched servers in ascending ID order, emitting the
	// down transition before the degradation transition per server —
	// exactly the order of the old all-server scan.
	var out []Transition
	var last int32 = -1
	for _, s32 := range touched {
		if s32 == last {
			continue
		}
		last = s32
		s := int(s32)
		down := sw.seekDown(s, t)
		if down != sw.isDown[s] {
			sw.isDown[s] = down
			out = append(out, Transition{Server: gpu.ServerID(s), Down: down})
		}
		f := sw.seekSlow(s, t)
		if f != sw.factor[s] {
			sw.factor[s] = f
			out = append(out, Transition{Server: gpu.ServerID(s), Slow: true, Factor: f})
		}
	}
	return out
}

func (sw *Sweep) seekDown(s int, t simclock.Time) bool {
	spans := sw.tl.down[s]
	for sw.downIdx[s] < len(spans) && spans[sw.downIdx[s]].To <= t {
		sw.downIdx[s]++
	}
	i := sw.downIdx[s]
	return i < len(spans) && spans[i].From <= t
}

func (sw *Sweep) seekSlow(s int, t simclock.Time) float64 {
	spans := sw.tl.slow[s]
	for sw.slowIdx[s] < len(spans) && spans[sw.slowIdx[s]].To <= t {
		sw.slowIdx[s]++
	}
	i := sw.slowIdx[s]
	if i < len(spans) && spans[i].From <= t {
		return spans[i].Factor
	}
	return 1
}

// Down reports the sampled down state of server sid at the last
// Advance time.
func (sw *Sweep) Down(sid gpu.ServerID) bool {
	if int(sid) < 0 || int(sid) >= len(sw.isDown) {
		return false
	}
	return sw.isDown[sid]
}

// Factor reports the sampled degradation factor of server sid at the
// last Advance time (1 = healthy).
func (sw *Sweep) Factor(sid gpu.ServerID) float64 {
	if int(sid) < 0 || int(sid) >= len(sw.factor) {
		return 1
	}
	return sw.factor[sid]
}
