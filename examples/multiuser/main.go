// Multi-user cluster walkthrough: a Philly-shaped 10-user workload on
// the paper's 200-GPU heterogeneous testbed, run under Gandiva_fair
// and under Tiresias-L, showing what user-level fairness buys — and
// that it costs no efficiency.
package main

import (
	"fmt"
	"log"
	"sort"

	gf "repro"
)

const horizon = gf.Time(2 * gf.Day)

func buildTrace() []gf.JobSpec {
	zoo := gf.DefaultZoo()
	mixes := map[gf.UserID][]string{
		"ads":      {"vae", "superres"},
		"vision":   {"resnet50", "densenet121"},
		"research": {"resnext50", "transformer"},
		"speech":   {"lstm", "gru"},
		"gans":     {"dcgan", "pix2pix", "cyclegan"},
		"mobile":   {"squeezenet", "vae"},
		"search":   {"transformer", "gru"},
		"video":    {"resnet50", "cyclegan"},
		"intern":   {"vae", "squeezenet"},
		"platform": {"resnext50", "densenet121"},
	}
	var users []gf.UserSpec
	var names []gf.UserID
	for u := range mixes {
		names = append(names, u)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, u := range names {
		users = append(users, gf.UserSpec{
			User:               u,
			NumJobs:            60,
			ArrivalRatePerHour: 4,
			Models:             mixes[u],
			MeanK80Hours:       8,
		})
	}
	specs, err := gf.GenerateTrace(gf.DefaultZoo(), gf.TraceCfg{Seed: 2026, Users: users, MaxK80Hours: 24})
	if err != nil {
		log.Fatal(err)
	}
	_ = zoo
	return specs
}

func run(name string, p gf.Policy) *gf.Result {
	res, err := gf.Simulate(gf.Config{
		Cluster: gf.Default200Cluster(),
		Specs:   buildTrace(),
		Seed:    2026,
	}, p, horizon)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return res
}

func main() {
	fair := run("gandiva-fair", gf.MustNewScheduler(gf.SchedulerConfig{EnableTrading: true}))
	tir := run("tiresias", gf.NewTiresias(gf.TiresiasConfig{}))

	fmt.Printf("%-14s %10s %10s %12s %14s\n", "policy", "finished", "util", "migrations", "max share err")
	for _, res := range []*gf.Result{fair, tir} {
		fmt.Printf("%-14s %10d %9.1f%% %12d %13.1f%%\n",
			res.Policy, len(res.Finished), 100*res.Utilization.Fraction(),
			res.Migrations, 100*res.MaxShareError())
	}

	fmt.Println("\nper-user GPU-hours under gandiva-fair (vs fair reference):")
	usage := fair.TotalUsageByUser()
	ref := fair.FairUsageByUser
	var users []gf.UserID
	for u := range usage {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		fmt.Printf("  %-9s got %7.0f GPU-h   entitled %7.0f GPU-h\n",
			u, usage[u]/3600, ref[u]/3600)
	}

	fmt.Println("\nper-generation utilization under gandiva-fair:")
	for _, g := range []gf.Generation{gf.K80, gf.P40, gf.P100, gf.V100} {
		if u, ok := fair.UtilByGen[g]; ok {
			fmt.Printf("  %-5v %5.1f%%\n", g, 100*u.Fraction())
		}
	}
}
