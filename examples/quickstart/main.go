// Quickstart: two users share a small heterogeneous cluster under
// Gandiva_fair. Shows cluster construction, workload definition,
// running the scheduler, and reading fairness results.
package main

import (
	"fmt"
	"log"
	"sort"

	gf "repro"
)

func main() {
	// A small cluster: one 4-GPU K80 server and one 4-GPU V100 server.
	cluster, err := gf.NewCluster(
		gf.ServerSpec{Gen: gf.K80, Servers: 1, GPUsPerSrv: 4},
		gf.ServerSpec{Gen: gf.V100, Servers: 1, GPUsPerSrv: 4},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Two users with very different workloads: alice floods the
	// cluster with eight small VAE jobs, bob runs two 4-GPU ResNets.
	zoo := gf.DefaultZoo()
	var specs []gf.JobSpec
	specs = append(specs, gf.BatchJobs("alice", zoo.MustGet("vae"), 8, 1, 6.0)...)
	specs = append(specs, gf.BatchJobs("bob", zoo.MustGet("resnet50"), 2, 4, 6.0)...)
	specs, err = gf.AssignIDs(specs)
	if err != nil {
		log.Fatal(err)
	}

	// Run Gandiva_fair with trading enabled for 24 simulated hours.
	sched, err := gf.NewScheduler(gf.SchedulerConfig{EnableTrading: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gf.Simulate(gf.Config{
		Cluster: cluster,
		Specs:   specs,
		Seed:    1,
	}, sched, gf.Time(24*gf.Hour))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy: %s\n", res.Policy)
	fmt.Printf("finished %d jobs in %d scheduling rounds (%.1f simulated hours)\n",
		len(res.Finished), res.Rounds, float64(res.End)/gf.Hour)
	fmt.Printf("cluster utilization: %.1f%%\n", 100*res.Utilization.Fraction())
	fmt.Printf("migrations: %d, trades: %d\n\n", res.Migrations, res.TradeCount)

	// GPU time per user, next to the engine's fair-usage reference
	// (a per-round water-fill over active demand — the right yardstick
	// once jobs start finishing: a user whose work ran on V100s needs
	// fewer GPU-hours to complete, and a finished user stops accruing
	// entitlement).
	usage := res.TotalUsageByUser()
	var users []gf.UserID
	for u := range usage {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	fmt.Println("GPU-time per user:")
	for _, u := range users {
		fmt.Printf("  %-6s got %5.1f GPU-hours\n", u, usage[u]/3600)
	}

	fmt.Println("\nper-job completion:")
	for _, j := range res.Finished {
		fmt.Printf("  job %2d  user=%-6s model=%-10s gang=%d  JCT=%5.1fh  migrations=%d\n",
			j.ID, j.User, j.Perf.Model, j.Gang, j.JCT()/gf.Hour, j.Migrations())
	}
}
