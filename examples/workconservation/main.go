// Work conservation, visualized: three equal-ticket users where user
// c is only active in the middle of the run. The ASCII timeline shows
// c's share being carved out of a and b on arrival and returned on
// departure — GPU time is never left idle while anyone has work.
package main

import (
	"fmt"
	"log"
	"os"

	gf "repro"
)

func main() {
	cluster, err := gf.NewCluster(gf.ServerSpec{Gen: gf.P100, Servers: 4, GPUsPerSrv: 4})
	if err != nil {
		log.Fatal(err)
	}
	zoo := gf.DefaultZoo()

	var specs []gf.JobSpec
	specs = append(specs, gf.BatchJobs("a", zoo.MustGet("lstm"), 8, 1, 1e5)...)
	specs = append(specs, gf.BatchJobs("b", zoo.MustGet("gru"), 8, 1, 1e5)...)
	// c arrives at hour 6 with ~enough work for ~5-6 hours at a third
	// of the cluster, then departs.
	cJobs := gf.BatchJobs("c", zoo.MustGet("vae"), 8, 1, 3.5)
	for i := range cJobs {
		cJobs[i].Arrival = gf.Time(6 * gf.Hour)
	}
	specs = append(specs, cJobs...)
	specs, err = gf.AssignIDs(specs)
	if err != nil {
		log.Fatal(err)
	}

	res, err := gf.Simulate(gf.Config{
		Cluster:        cluster,
		Specs:          specs,
		Seed:           4,
		TimelineWindow: gf.Duration(2 * gf.Hour),
	}, gf.MustNewScheduler(gf.SchedulerConfig{}), gf.Time(18*gf.Hour))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GPU-time shares over 2-hour windows (16 P100 GPUs):")
	fmt.Println()
	if err := gf.RenderTimeline(os.Stdout, res.Timeline,
		[]gf.UserID{"a", "b", "c"}, 48, cluster.NumDevices()); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("c's arrival instantly carves out a third; its departure returns")
	fmt.Println("the share to a and b — work conservation in both directions.")
}
