// Hierarchical fairness: organizations hold tickets against each
// other, and each org's share divides among its members — the
// org → user structure most clusters bill by, built on the same
// water-filling + stride machinery as the flat scheduler.
//
// Here the "research" org (three users) and the "prod" org (one user)
// hold equal org tickets on a 16-GPU cluster. Flat per-user fairness
// would give prod's single user 25%; hierarchical fairness gives each
// ORG half, and research's half splits by intra-org weight (the lead
// gets 2×).
package main

import (
	"fmt"
	"log"
	"sort"

	gf "repro"
)

func main() {
	hierarchy, err := gf.NewHierarchy(map[string]*gf.Org{
		"research": {Tickets: 1, Weights: map[gf.UserID]float64{
			"lead":  2,
			"phd-1": 1,
			"phd-2": 1,
		}},
		"prod": {Tickets: 1, Weights: map[gf.UserID]float64{
			"serving": 1,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := gf.NewCluster(gf.ServerSpec{Gen: gf.P100, Servers: 4, GPUsPerSrv: 4})
	if err != nil {
		log.Fatal(err)
	}
	zoo := gf.DefaultZoo()
	var specs []gf.JobSpec
	for _, u := range []gf.UserID{"lead", "phd-1", "phd-2", "serving"} {
		specs = append(specs, gf.BatchJobs(u, zoo.MustGet("resnet50"), 8, 1, 1e5)...)
	}
	specs, err = gf.AssignIDs(specs)
	if err != nil {
		log.Fatal(err)
	}

	sched, err := gf.NewScheduler(gf.SchedulerConfig{Hierarchy: hierarchy})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gf.Simulate(gf.Config{Cluster: cluster, Specs: specs, Seed: 3},
		sched, gf.Time(24*gf.Hour))
	if err != nil {
		log.Fatal(err)
	}

	usage := res.TotalUsageByUser()
	orgOf := map[gf.UserID]string{
		"lead": "research", "phd-1": "research", "phd-2": "research", "serving": "prod",
	}
	var users []gf.UserID
	for u := range usage {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	var total float64
	orgTotals := map[string]float64{}
	for _, u := range users {
		total += usage[u]
		orgTotals[orgOf[u]] += usage[u]
	}

	fmt.Println("per-user GPU-time shares (hierarchical tickets):")
	for _, u := range users {
		fmt.Printf("  %-8s %-9s %5.1f%%\n", u, orgOf[u], 100*usage[u]/total)
	}
	fmt.Println("\nper-org shares (orgs hold 1:1 tickets):")
	for _, o := range []string{"prod", "research"} {
		fmt.Printf("  %-9s %5.1f%%\n", o, 100*orgTotals[o]/total)
	}
	fmt.Println("\nprod's single user holds the whole org share (50%), while")
	fmt.Println("research's 50% splits 2:1:1 among lead, phd-1, phd-2.")
}
