// Distributed deployment: the central scheduler and four server
// agents run as separate goroutines connected over real TCP loopback
// sockets, speaking the Register / RoundPlan / RoundReport protocol.
// Job state crosses the wire on every placement (Gandiva's checkpoint
// semantics), so agents are stateless and migration is just a plan
// that names a different server.
//
// In production the agents would be processes on GPU servers; the
// protocol, scheduler logic and placement are exactly what runs here.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	gf "repro"
)

func main() {
	central, err := gf.ListenTCP("central", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer central.Close()
	fmt.Printf("central scheduler listening on %s\n", central.Addr())

	// Four agents: two K80 servers and two V100 servers, 4 GPUs each.
	servers := []struct {
		name string
		gen  gf.Generation
	}{
		{"agent-k80-0", gf.K80}, {"agent-k80-1", gf.K80},
		{"agent-v100-0", gf.V100}, {"agent-v100-1", gf.V100},
	}
	agentDone := make(chan error, len(servers))
	for _, s := range servers {
		tr, err := gf.DialTCP(s.name, central.Addr())
		if err != nil {
			log.Fatal(err)
		}
		agent, err := gf.NewAgent(tr, "central", s.gen, 4)
		if err != nil {
			log.Fatal(err)
		}
		go func(name string) {
			agentDone <- agent.Run()
			fmt.Printf("  %s shut down\n", name)
		}(s.name)
	}

	// A mixed workload from two users.
	zoo := gf.DefaultZoo()
	var specs []gf.JobSpec
	specs = append(specs, gf.BatchJobs("alice", zoo.MustGet("resnet50"), 4, 2, 1.0)...)
	specs = append(specs, gf.BatchJobs("bob", zoo.MustGet("vae"), 6, 1, 1.0)...)
	specs, err = gf.AssignIDs(specs)
	if err != nil {
		log.Fatal(err)
	}

	coord, err := gf.NewCentral(central,
		gf.MustNewScheduler(gf.SchedulerConfig{EnableTrading: true}),
		gf.CentralConfig{Specs: specs, Quantum: 360})
	if err != nil {
		log.Fatal(err)
	}
	if err := coord.WaitForAgents(len(servers), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d agents registered; scheduling...\n", len(servers))

	sum, err := coord.Run(200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nran %d rounds (%.1f simulated hours of training)\n",
		sum.Rounds, sum.VirtualSeconds/gf.Hour)
	fmt.Printf("finished %d jobs, %d unfinished\n", len(sum.Finished), sum.Unfinished)
	for _, j := range sum.Finished {
		fmt.Printf("  job %2d user=%-6s model=%-9s gang=%d JCT=%5.2fh migrations=%d\n",
			j.ID, j.User, j.Perf.Model, j.Gang, j.JCT()/gf.Hour, j.Migrations())
	}

	var users []gf.UserID
	for u := range sum.UsageByUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	fmt.Println("\nGPU-hours per user:")
	for _, u := range users {
		fmt.Printf("  %-6s %.1f\n", u, sum.UsageByUser[u]/3600)
	}

	for range servers {
		<-agentDone
	}
}
