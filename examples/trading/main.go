// Trading walkthrough: reproduces the paper's two-user trading
// story end to end. A memory-bound user (VAEs, ~1.2× on V100) and a
// compute-dense user (ResNeXts, ~4.5× on V100) share a K80+V100
// cluster. The heterogeneity-blind fair share splits every
// generation evenly; automatic trading then moves V100 time to the
// dense user at a price paid in K80 time — and BOTH users' training
// throughput rises.
package main

import (
	"fmt"
	"log"

	gf "repro"
)

func buildSpecs(zoo *gf.Zoo) []gf.JobSpec {
	var specs []gf.JobSpec
	// Long-running jobs so throughput is measured in steady state.
	specs = append(specs, gf.BatchJobs("membound", zoo.MustGet("vae"), 12, 1, 1e5)...)
	specs = append(specs, gf.BatchJobs("dense", zoo.MustGet("resnext50"), 12, 1, 1e5)...)
	specs, err := gf.AssignIDs(specs)
	if err != nil {
		log.Fatal(err)
	}
	return specs
}

func run(trading bool) *gf.Result {
	cluster, err := gf.NewCluster(
		gf.ServerSpec{Gen: gf.K80, Servers: 2, GPUsPerSrv: 4},
		gf.ServerSpec{Gen: gf.V100, Servers: 2, GPUsPerSrv: 4},
	)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := gf.NewScheduler(gf.SchedulerConfig{EnableTrading: trading})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gf.Simulate(gf.Config{
		Cluster: cluster,
		Specs:   buildSpecs(gf.DefaultZoo()),
		Seed:    7,
	}, sched, gf.Time(24*gf.Hour))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("=== heterogeneity-blind fair share (no trading) ===")
	blind := run(false)
	report(blind)

	fmt.Println("\n=== with automatic resource trading ===")
	traded := run(true)
	report(traded)

	fmt.Println("\n=== the win-win ===")
	for _, u := range []gf.UserID{"membound", "dense"} {
		b := blind.ThroughputByUser[u]
		t := traded.ThroughputByUser[u]
		fmt.Printf("  %-9s throughput gain: %.2f×\n", u, t/b)
	}
	fmt.Printf("  trades executed: %d\n", traded.TradeCount)
	fmt.Println("\nBoth users end up ahead: the trade price sits strictly between")
	fmt.Println("their profiled V100/K80 speedups, so each side values what it")
	fmt.Println("receives more than what it gives up.")
}

func report(res *gf.Result) {
	for _, u := range []gf.UserID{"membound", "dense"} {
		byGen := res.UsageByUserGen[u]
		fmt.Printf("  %-9s minibatches=%12.0f  GPU-hours: K80=%6.1f V100=%6.1f\n",
			u, res.ThroughputByUser[u], byGen[gf.K80]/3600, byGen[gf.V100]/3600)
	}
	fmt.Printf("  utilization: %.1f%%\n", 100*res.Utilization.Fraction())
}
