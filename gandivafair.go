// Package gandivafair is a faithful, simulation-backed implementation
// of Gandiva_fair (EuroSys 2020): a distributed fair-share scheduler
// for deep-learning training on heterogeneous GPU clusters that
// balances efficiency (work conservation, migration, packing) with
// per-user fairness (gang-aware stride scheduling over ticket
// entitlements) and exploits GPU heterogeneity through automatic,
// Pareto-improving resource trading.
//
// This root package is the public API: it re-exports the pieces a
// downstream user composes — cluster inventory, model zoo, workload
// generation, the Gandiva_fair policy and the baselines, the
// simulation engine, and the distributed (central + agents) runtime.
// The examples/ directory uses nothing but this surface.
//
// Quick start:
//
//	cluster := gandivafair.Default200Cluster()
//	zoo := gandivafair.DefaultZoo()
//	specs := gandivafair.BatchJobs("alice", zoo.MustGet("resnet50"), 4, 2, 2.0)
//	specs, _ = gandivafair.AssignIDs(specs)
//	res, err := gandivafair.Simulate(gandivafair.Config{
//		Cluster: cluster, Specs: specs,
//	}, gandivafair.NewScheduler(gandivafair.SchedulerConfig{EnableTrading: true}), 24*gandivafair.Hour)
package gandivafair

import (
	"context"
	"io"

	"repro/internal/baselines"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/fairshare"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/sweep"
	"repro/internal/trade"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Hardware inventory

// Re-exported inventory types. A Cluster is immutable after
// construction; build one with NewCluster or Default200Cluster.
type (
	Cluster    = gpu.Cluster
	ServerSpec = gpu.Spec
	Generation = gpu.Generation
)

// GPU generations, oldest to newest.
const (
	K80  = gpu.K80
	P40  = gpu.P40
	P100 = gpu.P100
	V100 = gpu.V100
)

// NewCluster builds a cluster from server specs.
func NewCluster(specs ...ServerSpec) (*Cluster, error) { return gpu.New(specs...) }

// Default200Cluster returns the paper-shaped 200-GPU heterogeneous
// testbed (48 K80 + 48 P40 + 56 P100 + 48 V100 over 50 servers).
func Default200Cluster() *Cluster { return gpu.Default200() }

// ---------------------------------------------------------------------------
// Jobs and workloads

// Re-exported job and workload types.
type (
	JobID      = job.ID
	UserID     = job.UserID
	JobSpec    = job.Spec
	Job        = job.Job
	Perf       = job.Perf
	Zoo        = workload.Zoo
	UserSpec   = workload.UserSpec
	TraceCfg   = workload.Config
	GangWeight = workload.GangWeight
)

// Time aliases: virtual time is float64 seconds.
type (
	Time     = simclock.Time
	Duration = simclock.Duration
)

// Duration units in seconds.
const (
	Second = simclock.Second
	Minute = simclock.Minute
	Hour   = simclock.Hour
	Day    = simclock.Day
)

// DefaultZoo returns the 12-model catalog with Table-1-shaped
// per-generation speedups.
func DefaultZoo() *Zoo { return workload.DefaultZoo() }

// NewZoo builds a custom model catalog.
func NewZoo(profiles ...*Perf) (*Zoo, error) { return workload.NewZoo(profiles...) }

// GenerateTrace produces a deterministic multi-user job trace with
// Philly-shaped distributions.
func GenerateTrace(z *Zoo, cfg TraceCfg) ([]JobSpec, error) { return workload.Generate(z, cfg) }

// BatchJobs builds n identical jobs for one user, each sized to run
// standalone for k80Hours on K80s.
func BatchJobs(user UserID, perf *Perf, n, gang int, k80Hours float64) []JobSpec {
	return workload.BatchJobs(user, perf, n, gang, k80Hours)
}

// AssignIDs renumbers specs 1..n and validates them.
func AssignIDs(specs []JobSpec) ([]JobSpec, error) { return workload.AssignIDs(specs) }

// PhillyGangDist returns the default gang-size distribution.
func PhillyGangDist() []GangWeight { return workload.PhillyGangDist() }

// WriteTraceCSV serializes a job trace; ReadTraceCSV parses one back
// (model profiles are referenced by zoo name).
func WriteTraceCSV(w io.Writer, specs []JobSpec) error { return workload.WriteCSV(w, specs) }

// ReadTraceCSV parses a trace written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader, z *Zoo) ([]JobSpec, error) { return workload.ReadCSV(r, z) }

// ---------------------------------------------------------------------------
// Scheduling policies

// Re-exported policy and engine types.
type (
	Policy          = core.Policy
	SchedulerConfig = core.FairConfig
	Scheduler       = core.FairPolicy
	Config          = core.Config
	Result          = core.Result
	RoundState      = core.RoundState
	Decision        = core.Decision
	TradeConfig     = trade.Config
	PricePolicy     = trade.PricePolicy
	TiresiasConfig  = baselines.TiresiasConfig
)

// Trade price policies.
const (
	PriceGeometric    = trade.Geometric
	PriceMidpoint     = trade.Midpoint
	PriceSellerFloor  = trade.SellerFloor
	PriceBuyerCeiling = trade.BuyerCeiling
)

// Hierarchical fairness (org → user two-level tickets).
type (
	Hierarchy = fairshare.Hierarchy
	Org       = fairshare.Org
)

// NewHierarchy builds an org → user ticket hierarchy for
// SchedulerConfig.Hierarchy.
func NewHierarchy(orgs map[string]*Org) (*Hierarchy, error) { return fairshare.NewHierarchy(orgs) }

// NewScheduler constructs the Gandiva_fair policy.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) { return core.NewFairPolicy(cfg) }

// MustNewScheduler is NewScheduler but panics on bad config.
func MustNewScheduler(cfg SchedulerConfig) *Scheduler { return core.MustNewFairPolicy(cfg) }

// Baseline schedulers the paper compares against.
func NewTiresias(cfg TiresiasConfig) Policy { return baselines.NewTiresias(cfg) }
func NewGandivaRR() Policy                  { return baselines.NewGandivaRR() }
func NewStaticQuota(users []UserID) Policy  { return baselines.NewStaticQuota(users) }
func NewFIFO() Policy                       { return baselines.NewFIFO() }

// Timeline is the windowed share-over-time accumulator carried in
// Result.Timeline.
type Timeline = metrics.Timeline

// RenderTimeline writes a Result's share timeline as stacked ASCII
// bars (one letter per user, '·' for idle capacity).
func RenderTimeline(w io.Writer, tl *Timeline, users []UserID, width, capacityGPUs int) error {
	return metrics.RenderTimeline(w, tl, users, width, capacityGPUs)
}

// Simulate runs a policy over a config until the horizon (or all
// jobs finish) and returns the result.
func Simulate(cfg Config, p Policy, until Time) (*Result, error) {
	sim, err := core.New(cfg, p)
	if err != nil {
		return nil, err
	}
	return sim.Run(until)
}

// ---------------------------------------------------------------------------
// Invariant auditing and parallel sweeps

// Re-exported audit types. Every simulation carries an auditor that
// checks runtime invariants (capacity, gang integrity, no double
// placement, no placement on down servers, ticket sanity, GPU-second
// conservation) each round. AuditMode selects how violations are
// handled; the zero value is AuditStrict.
type (
	AuditMode      = core.AuditMode
	AuditReport    = core.AuditReport
	AuditViolation = core.AuditViolation
)

// Audit modes: strict fails the run on the first violation (the
// default, used by the whole test suite), count records violations in
// Result.Audit without failing, off disables checking.
const (
	AuditStrict = core.AuditStrict
	AuditCount  = core.AuditCount
	AuditOff    = core.AuditOff
)

// ParseAuditMode parses "strict", "count", or "off".
func ParseAuditMode(s string) (AuditMode, error) { return core.ParseAuditMode(s) }

// Re-exported sweep types: a Point is one config × policy × horizon
// cell; Sweep fans points across a worker pool and returns results in
// point order; SweepSummary aggregates per-group distributions.
type (
	SweepPoint    = sweep.Point
	SweepOptions  = sweep.Options
	SweepResult   = sweep.RunResult
	SweepSummary  = sweep.Summary
	SweepGrid     = sweep.Grid
	PolicyFactory = sweep.PolicyFactory
)

// Sweep runs every point on a worker pool (Workers ≤ 0 means
// GOMAXPROCS) and returns per-point results in input order; per-point
// failures land in SweepResult.Err, never an error return.
func Sweep(ctx context.Context, points []SweepPoint, opt SweepOptions) []SweepResult {
	return sweep.Run(ctx, points, opt)
}

// SummarizeSweep aggregates sweep results into per-group
// mean/p50/p99 distributions of JCT, share error and utilization.
func SummarizeSweep(results []SweepResult) *SweepSummary { return sweep.Summarize(results) }

// LoadSweepGrid parses the JSON grid format consumed by cmd/gfsweep
// (a scenario crossed with policy and seed lists).
func LoadSweepGrid(r io.Reader) (*SweepGrid, error) { return sweep.LoadGrid(r) }

// ---------------------------------------------------------------------------
// Distributed runtime

// Re-exported distributed-mode types: a central scheduler plus one
// agent per server, connected by an in-memory hub or TCP.
type (
	Transport     = comm.Transport
	Hub           = comm.Hub
	Agent         = distrib.Agent
	Central       = distrib.Central
	CentralConfig = distrib.CentralConfig
	RunSummary    = distrib.Summary
)

// NewHub creates an in-process transport fabric.
func NewHub() *Hub { return comm.NewHub() }

// ListenTCP starts the central scheduler's TCP endpoint.
func ListenTCP(name, addr string) (*comm.TCPServer, error) { return comm.ListenTCP(name, addr) }

// DialTCP connects an agent to a central scheduler over TCP.
func DialTCP(name, addr string) (*comm.TCPClient, error) { return comm.DialTCP(name, addr) }

// NewAgent wires an agent for one server.
func NewAgent(tr Transport, central string, gen Generation, gpus int) (*Agent, error) {
	return distrib.NewAgent(tr, central, gen, gpus)
}

// NewCentral builds the distributed coordinator around any Policy.
func NewCentral(tr Transport, p Policy, cfg CentralConfig) (*Central, error) {
	return distrib.NewCentral(tr, p, cfg)
}
