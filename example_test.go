package gandivafair_test

// Runnable godoc examples for the public API. Each prints stable,
// deterministic output (fixed seeds, noiseless profiling where it
// matters) so `go test` verifies the documentation stays true.

import (
	"fmt"
	"sort"

	gf "repro"
)

// The smallest end-to-end run: one user, one job, one server.
func Example() {
	cluster, _ := gf.NewCluster(gf.ServerSpec{Gen: gf.V100, Servers: 1, GPUsPerSrv: 4})
	zoo := gf.DefaultZoo()
	specs, _ := gf.AssignIDs(gf.BatchJobs("alice", zoo.MustGet("resnet50"), 1, 2, 1.0))

	res, _ := gf.Simulate(gf.Config{Cluster: cluster, Specs: specs, Seed: 1},
		gf.MustNewScheduler(gf.SchedulerConfig{}), gf.Time(gf.Day))

	j := res.Finished[0]
	fmt.Printf("%s finished %d jobs; resnet50 ran %.1f× faster on V100 than its K80 hour\n",
		res.Policy, len(res.Finished), gf.Hour/j.JCT())
	// Output:
	// gandiva-fair-no-trade finished 1 jobs; resnet50 ran 3.5× faster on V100 than its K80 hour
}

// Fair share is user-level: a user with many small jobs and a user
// with few big gangs split a contended cluster evenly.
func ExampleSimulate_fairness() {
	cluster, _ := gf.NewCluster(gf.ServerSpec{Gen: gf.K80, Servers: 4, GPUsPerSrv: 4})
	zoo := gf.DefaultZoo()
	var specs []gf.JobSpec
	specs = append(specs, gf.BatchJobs("flooder", zoo.MustGet("vae"), 24, 1, 1e5)...)
	specs = append(specs, gf.BatchJobs("biggang", zoo.MustGet("resnet50"), 2, 8, 1e5)...)
	specs, _ = gf.AssignIDs(specs)

	res, _ := gf.Simulate(gf.Config{Cluster: cluster, Specs: specs, Seed: 2},
		gf.MustNewScheduler(gf.SchedulerConfig{}), gf.Time(gf.Day))

	usage := res.TotalUsageByUser()
	total := usage["flooder"] + usage["biggang"]
	fmt.Printf("flooder %.0f%%, big-gang user %.0f%%\n",
		100*usage["flooder"]/total, 100*usage["biggang"]/total)
	// Output:
	// flooder 50%, big-gang user 50%
}

// The model zoo carries Table-1-shaped heterogeneity: memory-bound
// models barely gain from a V100, compute-dense models gain ~4-5×.
func ExampleZoo_speedups() {
	zoo := gf.DefaultZoo()
	for _, m := range []string{"vae", "resnet50", "transformer"} {
		p := zoo.MustGet(m)
		fmt.Printf("%-12s V100/K80 = %.2f×\n", m, p.Speedup(gf.V100, gf.K80))
	}
	// Output:
	// vae          V100/K80 = 1.22×
	// resnet50     V100/K80 = 3.54×
	// transformer  V100/K80 = 5.20×
}

// Hierarchies make fairness two-level: orgs split the cluster by org
// tickets; members split their org's share by weight.
func ExampleNewHierarchy() {
	h, _ := gf.NewHierarchy(map[string]*gf.Org{
		"research": {Tickets: 1, Weights: map[gf.UserID]float64{"r1": 1, "r2": 1}},
		"prod":     {Tickets: 1, Weights: map[gf.UserID]float64{"p1": 1}},
	})
	tickets := h.Flatten([]gf.UserID{"r1", "r2", "p1"})
	var users []gf.UserID
	for u := range tickets {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		fmt.Printf("%s: %.1f\n", u, tickets[u])
	}
	// Output:
	// p1: 1.0
	// r1: 0.5
	// r2: 0.5
}

// Traces round-trip through CSV, referenced against the zoo.
func ExampleGenerateTrace() {
	zoo := gf.DefaultZoo()
	specs, _ := gf.GenerateTrace(zoo, gf.TraceCfg{
		Seed:  7,
		Users: []gf.UserSpec{{User: "u", NumJobs: 3, Models: []string{"gru"}}},
	})
	for _, s := range specs {
		fmt.Printf("job %d: %s gang=%d\n", s.ID, s.Perf.Model, s.Gang)
	}
	// Output:
	// job 1: gru gang=1
	// job 2: gru gang=1
	// job 3: gru gang=1
}
