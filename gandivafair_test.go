package gandivafair

// Public-API smoke tests: everything the examples and downstream
// users rely on, exercised only through the root package surface.

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cluster, err := NewCluster(
		ServerSpec{Gen: K80, Servers: 1, GPUsPerSrv: 4},
		ServerSpec{Gen: V100, Servers: 1, GPUsPerSrv: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	zoo := DefaultZoo()
	var specs []JobSpec
	specs = append(specs, BatchJobs("alice", zoo.MustGet("vae"), 6, 1, 3.0)...)
	specs = append(specs, BatchJobs("bob", zoo.MustGet("resnet50"), 2, 4, 3.0)...)
	specs, err = AssignIDs(specs)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(SchedulerConfig{EnableTrading: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Config{Cluster: cluster, Specs: specs, Seed: 1}, sched, Time(2*Day))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished) != 8 || res.Unfinished != 0 {
		t.Fatalf("finished %d, unfinished %d", len(res.Finished), res.Unfinished)
	}
	if res.Policy != "gandiva-fair" {
		t.Errorf("policy = %q", res.Policy)
	}
}

func TestPublicBaselinesRun(t *testing.T) {
	cluster, _ := NewCluster(ServerSpec{Gen: K80, Servers: 2, GPUsPerSrv: 4})
	zoo := DefaultZoo()
	specs, _ := AssignIDs(BatchJobs("u", zoo.MustGet("gru"), 6, 1, 1.0))
	for _, p := range []Policy{
		NewTiresias(TiresiasConfig{}),
		NewGandivaRR(),
		NewStaticQuota([]UserID{"u"}),
		NewFIFO(),
	} {
		res, err := Simulate(Config{Cluster: cluster, Specs: specs, Seed: 2}, p, Time(Day))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.Finished) != 6 {
			t.Errorf("%s finished %d of 6", p.Name(), len(res.Finished))
		}
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	zoo := DefaultZoo()
	specs, err := GenerateTrace(zoo, TraceCfg{
		Seed:  3,
		Users: []UserSpec{{User: "a", NumJobs: 25, ArrivalRatePerHour: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, specs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf, zoo)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(specs) {
		t.Fatalf("round trip %d → %d", len(specs), len(back))
	}
}

func TestPublicGangDist(t *testing.T) {
	var sum float64
	for _, gw := range PhillyGangDist() {
		sum += gw.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("gang weights sum to %v", sum)
	}
}

func TestPublicDistributedHub(t *testing.T) {
	hub := NewHub()
	central, err := hub.Attach("central")
	if err != nil {
		t.Fatal(err)
	}
	agentTr, err := hub.Attach("agent-0")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(agentTr, "central", K80, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- agent.Run() }()

	zoo := DefaultZoo()
	specs, _ := AssignIDs(BatchJobs("u", zoo.MustGet("squeezenet"), 2, 1, 0.2))
	coord, err := NewCentral(central, MustNewScheduler(SchedulerConfig{}),
		CentralConfig{Specs: specs, Quantum: 360})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sum, err := coord.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Finished) != 2 {
		t.Fatalf("distributed run finished %d of 2", len(sum.Finished))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPublicCustomZoo(t *testing.T) {
	var p Perf
	p.Model = "custom"
	p.ScalingEff = 0.9
	p.CheckpointMB = 10
	p.RatePerGPU[K80] = 2
	p.RatePerGPU[V100] = 6
	zoo, err := NewZoo(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got := zoo.MustGet("custom").Speedup(V100, K80); math.Abs(got-3) > 1e-12 {
		t.Errorf("custom speedup = %v", got)
	}
}

func TestPublicSweepAndAudit(t *testing.T) {
	if _, err := ParseAuditMode("bogus"); err == nil {
		t.Error("bogus audit mode accepted")
	}
	mode, err := ParseAuditMode("count")
	if err != nil || mode != AuditCount {
		t.Fatalf("ParseAuditMode(count) = %v, %v", mode, err)
	}

	grid, err := LoadSweepGrid(strings.NewReader(`{
		"scenario": {
			"cluster": [{"gen": "K80", "servers": 1, "gpus_per_server": 4}],
			"users": [{"name": "u", "jobs": 4, "mean_k80_hours": 1,
			           "gangs": [{"gang": 1, "weight": 1}]}],
			"horizon_hours": 8
		},
		"policies": ["gandiva-fair", "fifo"],
		"seeds": [1, 2]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	points, err := grid.Points(AuditStrict)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	results := Sweep(context.Background(), points, SweepOptions{})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label, r.Err)
		}
		if r.Result.Audit == nil || !r.Result.Audit.Clean() {
			t.Errorf("%s: audit not clean", r.Label)
		}
	}
	sum := SummarizeSweep(results)
	if len(sum.Groups) != 2 {
		t.Fatalf("summary groups = %d, want 2", len(sum.Groups))
	}
	var b bytes.Buffer
	if err := sum.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fifo") {
		t.Errorf("summary table missing fifo row:\n%s", b.String())
	}
}
