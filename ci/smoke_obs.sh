#!/usr/bin/env bash
# Smoke test for the live observability surface: start a real gfdist
# central + agent deployment with -http, then assert that /healthz
# answers, /metrics is Prometheus text containing the per-phase round
# histograms and per-user share gauges, and /debug/sched returns the
# explained-decision JSON.
set -euo pipefail

HTTP=127.0.0.1:9191
LISTEN=127.0.0.1:7171
cd "$(dirname "$0")/.."

go build -o /tmp/gfdist ./cmd/gfdist

cleanup() {
  kill "${CENTRAL_PID:-}" "${AGENT_PID:-}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

# A deliberately long workload so the deployment is still running
# (and scrapeable) while we probe; cleanup kills it.
/tmp/gfdist central -listen "$LISTEN" -agents 1 -users 2 -jobs 200 \
  -mean-hours 4 -rounds 1000000 -http "$HTTP" &
CENTRAL_PID=$!

# /healthz must answer while the central is still waiting for agents.
for i in $(seq 1 50); do
  if curl -fsS "http://$HTTP/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -fsS "http://$HTTP/healthz" | grep -q ok
echo "healthz: ok"

# Phase histogram series are pre-registered, so /metrics must already
# carry them before any round has run.
METRICS=$(curl -fsS "http://$HTTP/metrics")
echo "$METRICS" | grep -q '^# TYPE gf_round_phase_seconds histogram'
echo "$METRICS" | grep -q 'gf_round_phase_seconds_bucket{phase="decide",le="0.001"}'
echo "metrics: phase histograms present before first round"

/tmp/gfdist agent -connect "$LISTEN" -name agent-0 -gen V100 -gpus 4 &
AGENT_PID=$!

# Wait for scheduling to make progress; keep the scrape that saw it.
ROUNDS=0
for i in $(seq 1 100); do
  METRICS=$(curl -fsS "http://$HTTP/metrics")
  ROUNDS=$(echo "$METRICS" | awk '/^gf_rounds_total/ {print $2}')
  if [ "${ROUNDS:-0}" != "0" ] && [ -n "${ROUNDS:-}" ]; then break; fi
  sleep 0.2
done
[ "${ROUNDS:-0}" != "0" ] || { echo "no rounds completed"; exit 1; }
echo "$METRICS" | grep -q 'gf_round_phase_seconds_count{phase="dispatch"}'
echo "$METRICS" | grep -q 'gf_user_usage_fraction{user="user01"}'
echo "$METRICS" | grep -q 'gf_protocol_events_total{event="plan_sent"}'
echo "metrics: live series present after $ROUNDS rounds"

SCHED=$(curl -fsS "http://$HTTP/debug/sched")
echo "$SCHED" | grep -q '"decisions"'
echo "$SCHED" | grep -q '"reason"'
echo "debug/sched: explained decisions present"

echo "obs smoke test passed"
