#!/usr/bin/env bash
# Network-chaos smoke test for the partition-tolerant control plane:
# run the deterministic network fault matrix (duplication, reordering,
# corruption, a dropped plan, delayed straggler reports, a one-way
# partition, a full partition, and a central crash + snapshot restore
# mid-partition) under the race detector, and require
#
#   1. per-user usage digests byte-identical to the undisturbed
#      baseline on every seed (gfdist exits nonzero on divergence), and
#   2. the same seed reproducing the same digest across two runs
#      (hash-coin determinism regardless of goroutine interleaving).
#
# The distrib test suite's protocol unit tests (idempotent replay,
# epoch fencing, lease expiry, straggler cutoff) run under -race too.
set -euo pipefail

cd "$(dirname "$0")/.."

SNAPDIR=$(mktemp -d)
trap 'rm -rf "$SNAPDIR"' EXIT

digest_of() {
  # Last "faulted <hex>" digest line of a run.
  awk '/^ *faulted /{d=$2} END{print d}'
}

for SEED in 911 42 7; do
  echo "=== netchaos matrix seed $SEED ==="
  rm -rf "$SNAPDIR"/*
  OUT1=$(go run -race ./cmd/gfdist chaos -netchaos -seed "$SEED" -snapshot-dir "$SNAPDIR")
  echo "$OUT1"
  # The mid-partition restore must have actually consumed a snapshot.
  [ -f "$SNAPDIR/central.snap.json" ] || { echo "no snapshot written"; exit 1; }
  # Determinism: a second run of the same seed lands on the same digest.
  rm -rf "$SNAPDIR"/*
  OUT2=$(go run -race ./cmd/gfdist chaos -netchaos -seed "$SEED" -snapshot-dir "$SNAPDIR")
  D1=$(echo "$OUT1" | digest_of)
  D2=$(echo "$OUT2" | digest_of)
  [ -n "$D1" ] || { echo "no digest in output"; exit 1; }
  if [ "$D1" != "$D2" ]; then
    echo "seed $SEED not deterministic: $D1 vs $D2" >&2
    exit 1
  fi
done

echo "=== protocol unit tests under -race ==="
go test -race -count=1 \
  -run 'TestNetChaos|TestReplayedReportCountedOnce|TestAgentFencesStaleEpochPlan|TestCentralFencesStaleEpochReport|TestLeaseExpiryParksAtCheckpoint|TestStragglerCutoffReconcilesLateReport|TestUndeliverablePlanImmediateMiss' \
  ./internal/distrib/

echo "netchaos smoke test passed"
