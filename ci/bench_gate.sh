#!/usr/bin/env bash
# Benchmark-ledger gate: re-measure the round loop at 1k/10k/100k
# GPUs and compare against the committed BENCH_core.json. Fails (exit
# 1) when allocs/round regress beyond the tolerance, when the spans-on
# allocation tax exceeds the committed tax plus the tolerance, or when
# base allocs/round at the 100k-GPU row breaches the absolute cap —
# the hard floor that keeps the incremental engine from quietly
# sliding back toward per-round full rescans (the rescan engine burns
# ~620k allocs/round at that row; the incremental engine ~450). Raw
# ns/round is informational only (machine-dependent and noisy at
# sub-millisecond rounds). Regenerate the ledger after an intentional
# change with:
#
#   go run ./cmd/gfbench -ledger -update
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/gfbench -ledger -check -tol "${BENCH_TOL:-0.15}" -alloc-cap "${BENCH_ALLOC_CAP:-2000}"
