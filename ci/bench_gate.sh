#!/usr/bin/env bash
# Benchmark-ledger gate: re-measure the round loop at 1k/10k/100k
# GPUs and compare against the committed BENCH_core.json. Fails (exit
# 1) when allocs/round regress beyond the tolerance or the spans-on
# overhead ratio exceeds the committed ratio plus the tolerance; raw
# ns/round is informational only (machine-dependent). Regenerate the
# ledger after an intentional change with:
#
#   go run ./cmd/gfbench -ledger -update
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/gfbench -ledger -check -tol "${BENCH_TOL:-0.15}"
