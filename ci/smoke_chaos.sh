#!/usr/bin/env bash
# Chaos smoke test for the fault-tolerant distributed runtime: run the
# in-process fault-injection harness (agent kill + rejoin, dropped
# plans, delayed reports, central crash + snapshot restore) under the
# race detector on two fixed seeds and require byte-identical per-user
# usage accounting versus the undisturbed baseline. gfdist chaos exits
# nonzero on any divergence, lost job, or audit violation.
set -euo pipefail

cd "$(dirname "$0")/.."

SNAPDIR=$(mktemp -d)
trap 'rm -rf "$SNAPDIR"' EXIT

for SEED in 42 7; do
  echo "=== chaos seed $SEED ==="
  rm -rf "$SNAPDIR"/*
  go run -race ./cmd/gfdist chaos \
    -seed "$SEED" \
    -kill-at 1 -restart-after 2 \
    -snapshot-at 2 -snapshot-dir "$SNAPDIR" \
    -drop-prob 0.3 -max-drops 2 -max-delay-ms 5
  # The restore path must have actually written and consumed a snapshot.
  [ -f "$SNAPDIR/central.snap.json" ] || { echo "no snapshot written"; exit 1; }
done

echo "chaos smoke test passed"
