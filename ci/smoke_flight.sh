#!/usr/bin/env bash
# Flight-recorder smoke test: force an audit violation with gfsim's
# -audit-drill, assert the run fails AND leaves a parseable
# flight.json naming the drill, then check gfflight can summarize it
# and convert its spans to a Chrome trace with events in it.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/gfsim" ./cmd/gfsim
go build -o "$TMP/gfflight" ./cmd/gfflight

# The drill injects a synthetic violation at round 3; gfsim must exit
# nonzero and the deferred flight dump must land before the exit.
if "$TMP/gfsim" -users 2 -jobs 4 -hours 2 \
    -flight "$TMP/flight.json" -audit-drill 3 >/dev/null 2>"$TMP/stderr.txt"; then
  echo "audit drill did not fail the run"; exit 1
fi
grep -q "audit drill" "$TMP/stderr.txt"
echo "drill: run failed as expected"

[ -s "$TMP/flight.json" ] || { echo "no flight.json written"; exit 1; }
"$TMP/gfflight" -q "$TMP/flight.json"
echo "flight.json: parseable"

SUMMARY=$("$TMP/gfflight" "$TMP/flight.json")
echo "$SUMMARY" | grep -q "audit-violation"
echo "$SUMMARY" | grep -q "drill"
echo "$SUMMARY" | grep -q "round 3"
echo "flight.json: names the drill violation and retains rounds"

"$TMP/gfflight" -q -chrome "$TMP/trace.json" "$TMP/flight.json"
grep -q '"traceEvents"' "$TMP/trace.json"
grep -q '"ph"' "$TMP/trace.json"
echo "chrome trace: events present"

echo "flight smoke test passed"
