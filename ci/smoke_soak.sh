#!/usr/bin/env bash
# Soak smoke test for the probabilistic fault model: run short seeded
# soaks under the race detector. Every iteration runs the full engine
# under the strict auditor with the complete fault stack (server
# crashes, flaky server + quarantine, GPU degradation, job
# crash-restart, migration failures) and verifies the robustness
# contract — no job lost, audit clean, fairness in band, compensation
# books balanced, byte-identical rerun on the same seed. gfsoak exits
# nonzero on any contract violation.
set -euo pipefail

cd "$(dirname "$0")/.."

for SEED in 42 7; do
  echo "=== soak seed $SEED ==="
  go run -race ./cmd/gfsoak -seed "$SEED" -iters 2 -hours 6
done

# The scenario front door must accept fault-model JSON end to end.
go run -race ./cmd/gfsim -scenario scenarios/faulty.json >/dev/null

echo "soak smoke test passed"
