// Command gfdist runs the distributed Gandiva_fair deployment: one
// process as the central scheduler, one process per GPU server as an
// agent, speaking the Register/RoundPlan/RoundReport protocol over
// TCP.
//
// Start the central scheduler (it waits for agents, then schedules):
//
//	gfdist central -listen 127.0.0.1:7070 -agents 4 -users 4 -jobs 20
//
// Start one agent per server (in other terminals or on other hosts):
//
//	gfdist agent -connect 127.0.0.1:7070 -name agent-0 -gen V100 -gpus 4
//
// The agents exit when the central scheduler finishes and sends
// Shutdown. With -rejoin N an agent survives a central restart: when
// its connection drops before Shutdown it re-dials and re-registers
// up to N times.
//
// The central can persist its state each round with -snapshot-dir and
// resume from the latest snapshot with -restore; after a restore it
// waits for the known agents to re-register instead of admitting a
// fresh workload.
//
// The central speaks the partition-tolerant protocol when asked:
// -lease-rounds N lets cut-off agents keep executing in degraded mode
// for N rounds (their buffered reports reconcile on heal), and
// -collect-deadline D is the straggler cutoff — the round proceeds
// without agents that miss it and their late reports are charged
// idempotently.
//
// The chaos subcommand runs the fault-injection harness in-process
// (in-memory transport): an undisturbed baseline and a faulted run
// with agent kill/rejoin, plan drops, report delays, and a central
// snapshot/restore, exiting nonzero if per-user usage diverges:
//
//	gfdist chaos -seed 42 -kill-at 1 -snapshot-at 2 -snapshot-dir /tmp/snap
//
// With -netchaos it instead runs the deterministic network fault
// matrix (duplication, reordering, corruption, drops, delays, one-way
// and full partitions, plus a central crash+restore mid-partition)
// and prints the per-user usage digests, which must be identical:
//
//	gfdist chaos -netchaos -seed 911
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/span"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "central":
		runCentral(os.Args[2:])
	case "agent":
		runAgent(os.Args[2:])
	case "chaos":
		runChaos(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gfdist central -listen ADDR -agents N [-users N -jobs N -hours H -no-trading] [-http ADDR]
                 [-pprof] [-flight FILE -flight-rounds N] [-spans-out FILE]
                 [-snapshot-dir DIR -snapshot-every N] [-restore]
                 [-lease-rounds N] [-collect-deadline D]
  gfdist agent   -connect ADDR -name NAME -gen GEN -gpus N [-rejoin N]
  gfdist chaos   [-seed N -kill-at R -restart-after R -snapshot-at R -snapshot-dir DIR
                 -drop-prob P -max-drops N] [-netchaos]`)
	os.Exit(2)
}

func runCentral(args []string) {
	fs := flag.NewFlagSet("central", flag.ExitOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:7070", "address to listen on")
		agents    = fs.Int("agents", 2, "number of agents to wait for")
		users     = fs.Int("users", 4, "number of users")
		jobs      = fs.Int("jobs", 20, "jobs per user")
		meanHours = fs.Float64("mean-hours", 1, "mean standalone K80 runtime per job")
		rounds    = fs.Int("rounds", 500, "maximum scheduling rounds")
		quantum   = fs.Float64("quantum", 360, "virtual seconds of training per round")
		seed      = fs.Int64("seed", 1, "deterministic workload seed")
		noTrading = fs.Bool("no-trading", false, "disable resource trading")
		waitSecs  = fs.Int("wait", 60, "seconds to wait for agent registration")
		httpAddr  = fs.String("http", "", "serve /metrics, /healthz, /debug/sched on this address (e.g. :9090)")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -http address")
		flightOut = fs.String("flight", "", "arm the flight recorder; dumps the last rounds to this file on SIGUSR1 or /debug/flight?save=1")
		flightN   = fs.Int("flight-rounds", 0, "flight recorder window in rounds (0 = default 64)")
		spansOut  = fs.String("spans-out", "", "write the final rounds' spans (central + agents) as Chrome trace_event JSON for Perfetto")
		spansCap  = fs.Int("spans-cap", 0, "span ring capacity (0 = default 8192)")
		snapDir   = fs.String("snapshot-dir", "", "persist scheduler state to this directory after rounds")
		snapEvery = fs.Int("snapshot-every", 1, "snapshot every N rounds (with -snapshot-dir)")
		restore   = fs.Bool("restore", false, "resume from the snapshot in -snapshot-dir instead of a fresh workload")
		leaseR    = fs.Int("lease-rounds", 0, "degraded-mode lease in rounds: cut-off agents keep executing and buffer reports for this long before parking (0 = legacy protocol)")
		collectD  = fs.Duration("collect-deadline", 0, "straggler cutoff: proceed without agents that have not reported by this wall deadline (0 = use the report timeout)")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *restore && *snapDir == "" {
		fatal(fmt.Errorf("-restore needs -snapshot-dir"))
	}

	// The introspection server starts before agents register so
	// operators (and the CI smoke test) can scrape from the first
	// moment; phase histogram series exist from construction.
	var observer *obs.Observer
	var tracer *span.Tracer
	var rec *flight.Recorder
	if *httpAddr != "" || *spansOut != "" || *flightOut != "" {
		observer = obs.New()
		if *spansOut != "" || *flightOut != "" {
			tracer = span.New("central", *spansCap)
			observer.SetTracer(tracer)
		}
		if *flightOut != "" {
			rec = flight.New(*flightN, *flightOut)
			observer.SetSink(rec)
			rec.DumpOnSignal(func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			})
		}
		if *httpAddr != "" {
			opt := obs.MuxOptions{PProf: *pprofOn}
			if rec != nil {
				opt.Flight = rec
			}
			_, bound, err := obs.ServeOpts(*httpAddr, observer, opt)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "observability on http://%s (/metrics /healthz /debug/sched)\n", bound)
		}
	}

	srv, err := comm.ListenTCP("central", *listen)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("central scheduler listening on %s, waiting for %d agents...\n", srv.Addr(), *agents)

	policy, err := core.NewFairPolicy(core.FairConfig{EnableTrading: !*noTrading})
	if err != nil {
		fatal(err)
	}
	ccfg := distrib.CentralConfig{
		Quantum:         *quantum,
		Obs:             observer,
		SnapshotDir:     *snapDir,
		SnapshotEvery:   *snapEvery,
		LeaseRounds:     *leaseR,
		CollectDeadline: *collectD,
	}
	wait := time.Duration(*waitSecs) * time.Second

	var central *distrib.Central
	if *restore {
		st, err := distrib.LoadSnapshot(*snapDir)
		if err != nil {
			fatal(err)
		}
		central, err = distrib.RestoreCentral(srv, policy, ccfg, st)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("restored snapshot from round %d; waiting for %d agents to rejoin...\n",
			st.SavedRound, *agents)
		if err := central.WaitForRejoin(*agents, wait); err != nil {
			fatal(err)
		}
		fmt.Printf("%d agents rejoined; resuming schedule...\n", *agents)
	} else {
		zoo := workload.DefaultZoo()
		names := zoo.Names()
		var userSpecs []workload.UserSpec
		for i := 0; i < *users; i++ {
			userSpecs = append(userSpecs, workload.UserSpec{
				User:    job.UserID(fmt.Sprintf("user%02d", i+1)),
				NumJobs: *jobs, MeanK80Hours: *meanHours,
				Models: []string{names[i%len(names)], names[(i+5)%len(names)]},
				// Demo deployments are small; keep gangs modest so every
				// job fits a single server generation.
				GangDist: []workload.GangWeight{
					{Gang: 1, Weight: 0.7}, {Gang: 2, Weight: 0.2}, {Gang: 4, Weight: 0.1},
				},
			})
		}
		specs, err := workload.Generate(zoo, workload.Config{Seed: *seed, Users: userSpecs})
		if err != nil {
			fatal(err)
		}
		ccfg.Specs = specs
		central, err = distrib.NewCentral(srv, policy, ccfg)
		if err != nil {
			fatal(err)
		}
		if err := central.WaitForAgents(*agents, wait); err != nil {
			fatal(err)
		}
		fmt.Printf("%d agents registered; scheduling %d jobs...\n", *agents, len(specs))
	}

	sum, err := central.Run(*rounds)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nran %d rounds (%.1f virtual hours)\n", sum.Rounds, sum.VirtualSeconds/3600)
	fmt.Printf("finished %d jobs, %d unfinished, %d missed agent reports\n",
		len(sum.Finished), sum.Unfinished, sum.MissedReports)
	var us []job.UserID
	for u := range sum.UsageByUser {
		us = append(us, u)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	for _, u := range us {
		fmt.Printf("  %-8s %8.1f GPU-hours\n", u, sum.UsageByUser[u]/3600)
	}
	if tracer != nil && *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			fatal(err)
		}
		err = tracer.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "spans (%d retained, %d dropped) written to %s\n",
			len(tracer.Spans()), tracer.Dropped(), *spansOut)
	}
}

func runAgent(args []string) {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	var (
		connect = fs.String("connect", "127.0.0.1:7070", "central scheduler address")
		name    = fs.String("name", "", "unique agent name (required)")
		genStr  = fs.String("gen", "V100", "GPU generation of this server")
		gpus    = fs.Int("gpus", 4, "GPUs on this server")
		rejoins = fs.Int("rejoin", 0, "re-dial and re-register up to N times if the central goes away")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *name == "" {
		fatal(fmt.Errorf("agent needs -name"))
	}
	gen, err := gpu.ParseGeneration(*genStr)
	if err != nil {
		fatal(err)
	}
	for attempt := 0; ; attempt++ {
		err := serveOnce(*name, *connect, gen, *gpus)
		if err == nil {
			fmt.Println("shut down by central scheduler")
			return
		}
		// Only a dropped transport is worth a rejoin; protocol errors
		// (rejected registration, bad plan) are fatal either way.
		if !errors.Is(err, distrib.ErrTransportClosed) || attempt >= *rejoins {
			fatal(err)
		}
		delay := time.Duration(1<<uint(min(attempt, 4))) * time.Second
		fmt.Fprintf(os.Stderr, "gfdist: central unreachable (%v); rejoining in %v (attempt %d/%d)\n",
			err, delay, attempt+1, *rejoins)
		time.Sleep(delay)
	}
}

// serveOnce dials the central, registers, and serves rounds until
// Shutdown or transport loss.
func serveOnce(name, connect string, gen gpu.Generation, gpus int) error {
	cli, err := comm.DialTCP(name, connect)
	if err != nil {
		// A refused dial during a central restart behaves like a
		// dropped transport: eligible for rejoin.
		return fmt.Errorf("%w: %v", distrib.ErrTransportClosed, err)
	}
	defer cli.Close()
	agent, err := distrib.NewAgent(cli, "central", gen, gpus)
	if err != nil {
		return err
	}
	fmt.Printf("agent %s (%d× %v) serving %s\n", name, gpus, gen, connect)
	return agent.Run()
}

func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	var (
		seed         = fs.Int64("seed", 42, "deterministic fault-script seed")
		killAt       = fs.Int("kill-at", 1, "kill a busy agent after this round (0 = never)")
		restartAfter = fs.Int("restart-after", 2, "rounds between kill and restart")
		snapAt       = fs.Int("snapshot-at", 0, "crash+restore the central after this round (0 = never)")
		snapDir      = fs.String("snapshot-dir", "", "snapshot directory (required with -snapshot-at)")
		dropProb     = fs.Float64("drop-prob", 0.3, "per-plan drop probability")
		maxDrops     = fs.Int("max-drops", 2, "cap on dropped plans")
		delayMS      = fs.Int("max-delay-ms", 5, "report delay upper bound, milliseconds")
		netMatrix    = fs.Bool("netchaos", false, "run the deterministic network fault matrix (dup, reorder, corrupt, drop, delay, one-way and full partitions, central crash+restore) instead of the legacy script")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	var cfg distrib.ChaosConfig
	if *netMatrix {
		dir := *snapDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "gfdist-netchaos-*")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		cfg = distrib.NetChaosConfig(*seed, dir)
	} else {
		cfg = distrib.ChaosConfig{
			Seed:               *seed,
			DropProb:           *dropProb,
			MaxDrops:           *maxDrops,
			MaxDelay:           time.Duration(*delayMS) * time.Millisecond,
			KillAtRound:        *killAt,
			RestartAfterRounds: *restartAfter,
			SnapshotAtRound:    *snapAt,
			SnapshotDir:        *snapDir,
		}
	}
	sum, err := distrib.RunChaos(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("chaos run survived: %d baseline rounds, %d faulted rounds, %d plans dropped\n",
		sum.Baseline.Rounds, sum.Faulted.Rounds, sum.DroppedPlans)
	for _, e := range sum.Events {
		fmt.Println("  fault:", e)
	}
	if len(sum.NetStats) > 0 {
		var kinds []string
		for k := range sum.NetStats {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		fmt.Print("network faults fired:")
		for _, k := range kinds {
			fmt.Printf(" %s=%d", k, sum.NetStats[netchaos.Kind(k)])
		}
		fmt.Println()
	}
	baseDigest, faultDigest := sum.Digests()
	fmt.Printf("usage digest: baseline %s\n              faulted  %s\n", baseDigest, faultDigest)
	var us []job.UserID
	for u := range sum.Baseline.UsageByUser {
		us = append(us, u)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	fmt.Println("per-user occupied GPU-seconds (baseline == faulted):")
	for _, u := range us {
		fmt.Printf("  %-8s %10.1f == %10.1f\n", u, sum.Baseline.UsageByUser[u], sum.Faulted.UsageByUser[u])
	}
	if !sum.UsageIdentical() {
		fatal(fmt.Errorf("usage diverged"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfdist:", err)
	os.Exit(1)
}
