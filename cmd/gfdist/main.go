// Command gfdist runs the distributed Gandiva_fair deployment: one
// process as the central scheduler, one process per GPU server as an
// agent, speaking the Register/RoundPlan/RoundReport protocol over
// TCP.
//
// Start the central scheduler (it waits for agents, then schedules):
//
//	gfdist central -listen 127.0.0.1:7070 -agents 4 -users 4 -jobs 20
//
// Start one agent per server (in other terminals or on other hosts):
//
//	gfdist agent -connect 127.0.0.1:7070 -name agent-0 -gen V100 -gpus 4
//
// The agents exit when the central scheduler finishes and sends
// Shutdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "central":
		runCentral(os.Args[2:])
	case "agent":
		runAgent(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gfdist central -listen ADDR -agents N [-users N -jobs N -hours H -no-trading] [-http ADDR]
  gfdist agent   -connect ADDR -name NAME -gen GEN -gpus N`)
	os.Exit(2)
}

func runCentral(args []string) {
	fs := flag.NewFlagSet("central", flag.ExitOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:7070", "address to listen on")
		agents    = fs.Int("agents", 2, "number of agents to wait for")
		users     = fs.Int("users", 4, "number of users")
		jobs      = fs.Int("jobs", 20, "jobs per user")
		meanHours = fs.Float64("mean-hours", 1, "mean standalone K80 runtime per job")
		rounds    = fs.Int("rounds", 500, "maximum scheduling rounds")
		quantum   = fs.Float64("quantum", 360, "virtual seconds of training per round")
		seed      = fs.Int64("seed", 1, "deterministic workload seed")
		noTrading = fs.Bool("no-trading", false, "disable resource trading")
		waitSecs  = fs.Int("wait", 60, "seconds to wait for agent registration")
		httpAddr  = fs.String("http", "", "serve /metrics, /healthz, /debug/sched on this address (e.g. :9090)")
	)
	fs.Parse(args)

	// The introspection server starts before agents register so
	// operators (and the CI smoke test) can scrape from the first
	// moment; phase histogram series exist from construction.
	var observer *obs.Observer
	if *httpAddr != "" {
		observer = obs.New()
		_, bound, err := obs.Serve(*httpAddr, observer)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "observability on http://%s (/metrics /healthz /debug/sched)\n", bound)
	}

	srv, err := comm.ListenTCP("central", *listen)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("central scheduler listening on %s, waiting for %d agents...\n", srv.Addr(), *agents)

	zoo := workload.DefaultZoo()
	names := zoo.Names()
	var userSpecs []workload.UserSpec
	for i := 0; i < *users; i++ {
		userSpecs = append(userSpecs, workload.UserSpec{
			User:    job.UserID(fmt.Sprintf("user%02d", i+1)),
			NumJobs: *jobs, MeanK80Hours: *meanHours,
			Models: []string{names[i%len(names)], names[(i+5)%len(names)]},
			// Demo deployments are small; keep gangs modest so every
			// job fits a single server generation.
			GangDist: []workload.GangWeight{
				{Gang: 1, Weight: 0.7}, {Gang: 2, Weight: 0.2}, {Gang: 4, Weight: 0.1},
			},
		})
	}
	specs, err := workload.Generate(zoo, workload.Config{Seed: *seed, Users: userSpecs})
	if err != nil {
		fatal(err)
	}

	policy, err := core.NewFairPolicy(core.FairConfig{EnableTrading: !*noTrading})
	if err != nil {
		fatal(err)
	}
	central, err := distrib.NewCentral(srv, policy, distrib.CentralConfig{
		Specs:   specs,
		Quantum: *quantum,
		Obs:     observer,
	})
	if err != nil {
		fatal(err)
	}
	if err := central.WaitForAgents(*agents, time.Duration(*waitSecs)*time.Second); err != nil {
		fatal(err)
	}
	fmt.Printf("%d agents registered; scheduling %d jobs...\n", *agents, len(specs))

	sum, err := central.Run(*rounds)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nran %d rounds (%.1f virtual hours)\n", sum.Rounds, sum.VirtualSeconds/3600)
	fmt.Printf("finished %d jobs, %d unfinished, %d missed agent reports\n",
		len(sum.Finished), sum.Unfinished, sum.MissedReports)
	var us []job.UserID
	for u := range sum.UsageByUser {
		us = append(us, u)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	for _, u := range us {
		fmt.Printf("  %-8s %8.1f GPU-hours\n", u, sum.UsageByUser[u]/3600)
	}
}

func runAgent(args []string) {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	var (
		connect = fs.String("connect", "127.0.0.1:7070", "central scheduler address")
		name    = fs.String("name", "", "unique agent name (required)")
		genStr  = fs.String("gen", "V100", "GPU generation of this server")
		gpus    = fs.Int("gpus", 4, "GPUs on this server")
	)
	fs.Parse(args)
	if *name == "" {
		fatal(fmt.Errorf("agent needs -name"))
	}
	gen, err := gpu.ParseGeneration(*genStr)
	if err != nil {
		fatal(err)
	}
	cli, err := comm.DialTCP(*name, *connect)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()
	agent, err := distrib.NewAgent(cli, "central", gen, *gpus)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("agent %s (%d× %v) serving %s\n", *name, *gpus, gen, *connect)
	if err := agent.Run(); err != nil {
		fatal(err)
	}
	fmt.Println("shut down by central scheduler")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfdist:", err)
	os.Exit(1)
}
