// Command gflint runs the repository's determinism-and-correctness
// static analyzer suite (internal/lint) over module packages.
//
// Usage:
//
//	gflint ./...                 # all packages, text output
//	gflint -json ./internal/...  # JSON diagnostics
//	gflint -checks maprange,wallclock ./internal/core
//	gflint -list                 # available analyzers
//
// Exit status: 0 clean, 1 findings, 2 errors. CI runs `gflint ./...`
// as a merge gate. Suppress a finding with a justified directive on
// the flagged line or the line above:
//
//	//gflint:ignore <check> <one-line justification>
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
