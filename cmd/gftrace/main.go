// Command gftrace generates and inspects synthetic multi-user DLT
// workload traces (Philly-shaped distributions), the input format the
// simulator consumes.
//
// Usage:
//
//	gftrace -users 8 -jobs 50 -seed 3            # summary statistics
//	gftrace -users 8 -jobs 50 -csv trace.csv     # dump job list
//	gftrace -models                              # print the model zoo
//	gftrace -events run.csv                      # summarize an event trace (gfsim -trace-out)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		users     = flag.Int("users", 6, "number of users")
		jobs      = flag.Int("jobs", 40, "jobs per user")
		arrival   = flag.Float64("arrival", 2, "arrivals per hour per user")
		meanHours = flag.Float64("mean-hours", 4, "mean standalone K80 runtime")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		csvOut    = flag.String("csv", "", "write the trace to this CSV file")
		models    = flag.Bool("models", false, "print the model zoo and exit")
		events    = flag.String("events", "", "summarize an EVENT trace (.csv or .json written by gfsim -trace-out) and exit")
	)
	flag.Parse()

	if *events != "" {
		if err := summarizeEvents(*events); err != nil {
			fmt.Fprintln(os.Stderr, "gftrace:", err)
			os.Exit(1)
		}
		return
	}

	zoo := workload.DefaultZoo()
	if *models {
		printZoo(zoo)
		return
	}

	var userSpecs []workload.UserSpec
	for i := 0; i < *users; i++ {
		userSpecs = append(userSpecs, workload.UserSpec{
			User:    job.UserID(fmt.Sprintf("user%02d", i+1)),
			NumJobs: *jobs, ArrivalRatePerHour: *arrival, MeanK80Hours: *meanHours,
		})
	}
	specs, err := workload.Generate(zoo, workload.Config{Seed: *seed, Users: userSpecs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gftrace:", err)
		os.Exit(1)
	}

	summarize(specs)

	if *csvOut != "" {
		if err := writeTraceFile(specs, *csvOut); err != nil {
			fmt.Fprintln(os.Stderr, "gftrace:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%d jobs written to %s\n", len(specs), *csvOut)
	}
}

func printZoo(zoo *workload.Zoo) {
	fmt.Printf("%-13s %10s %6s %6s %6s %6s %8s %8s\n",
		"model", "K80 mb/s", "K80", "P40", "P100", "V100", "mem GB", "ckpt MB")
	for _, r := range zoo.SpeedupTable() {
		p := zoo.MustGet(r.Model)
		fmt.Printf("%-13s %10.1f %6.2f %6.2f %6.2f %6.2f %8.1f %8.0f\n",
			r.Model, p.RatePerGPU[gpu.K80],
			r.Speedup[gpu.K80], r.Speedup[gpu.P40], r.Speedup[gpu.P100], r.Speedup[gpu.V100],
			p.MemGBPerGPU, p.CheckpointMB)
	}
}

func summarize(specs []job.Spec) {
	gangs := map[int]int{}
	modelCount := map[string]int{}
	var hours []float64
	var lastArrival simclock.Time
	for _, s := range specs {
		gangs[s.Gang]++
		modelCount[s.Perf.Model]++
		rate := s.Perf.RatePerGPU[gpu.K80] * float64(s.Gang) * s.Perf.GangEff(s.Gang)
		hours = append(hours, s.TotalMB/rate/simclock.Hour)
		if s.Arrival > lastArrival {
			lastArrival = s.Arrival
		}
	}
	fmt.Printf("jobs          : %d\n", len(specs))
	fmt.Printf("arrival span  : %.1f h\n", float64(lastArrival)/3600)
	st := metrics.Summarize(hours)
	fmt.Printf("standalone K80 runtime: mean %.1f h, median %.1f h, p95 %.1f h, max %.1f h\n",
		st.Mean, st.Median, st.P95, st.Max)
	var gsizes []int
	for g := range gangs {
		gsizes = append(gsizes, g)
	}
	sort.Ints(gsizes)
	fmt.Println("gang sizes    :")
	for _, g := range gsizes {
		fmt.Printf("  %2d GPUs: %4d jobs (%.1f%%)\n", g, gangs[g], 100*float64(gangs[g])/float64(len(specs)))
	}
	var names []string
	for m := range modelCount {
		names = append(names, m)
	}
	sort.Strings(names)
	fmt.Println("models        :")
	for _, m := range names {
		fmt.Printf("  %-13s %4d\n", m, modelCount[m])
	}
}

// faultKinds are the fault-model event kinds surfaced in the
// timeline section of -events summaries.
var faultKinds = map[trace.Kind]bool{
	trace.KindFailure: true, trace.KindRecovery: true,
	trace.KindJobCrash: true, trace.KindMigFail: true,
	trace.KindQuarantine: true, trace.KindUnquarantine: true,
	trace.KindDegrade: true, trace.KindDegradeEnd: true,
	trace.KindLeaseExpire: true, trace.KindPartitionHeal: true,
	trace.KindFenceReject: true,
}

// summarizeEvents loads an event trace written by gfsim -trace-out
// (format picked by extension, mirroring gfsim's writer) and prints
// per-kind counts plus a chronological fault/quarantine timeline.
func summarizeEvents(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var events []trace.Event
	if strings.HasSuffix(path, ".json") {
		events, err = trace.ReadJSON(f)
	} else {
		events, err = trace.ReadCSV(f)
	}
	if err != nil {
		return err
	}

	fmt.Printf("events        : %d\n", len(events))
	if len(events) == 0 {
		return nil
	}
	fmt.Printf("span          : %.1f h .. %.1f h\n",
		float64(events[0].At)/3600, float64(events[len(events)-1].At)/3600)

	counts := map[trace.Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	var kinds []string
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	fmt.Println("kinds         :")
	for _, k := range kinds {
		fmt.Printf("  %-13s %6d\n", k, counts[trace.Kind(k)])
	}

	var faults []trace.Event
	for _, e := range events {
		if faultKinds[e.Kind] {
			faults = append(faults, e)
		}
	}
	if len(faults) == 0 {
		return nil
	}
	fmt.Printf("fault timeline: %d events\n", len(faults))
	for _, e := range faults {
		line := fmt.Sprintf("  %9.1f h  %-13s", float64(e.At)/3600, e.Kind)
		if e.Job != 0 {
			line += fmt.Sprintf(" job %d", e.Job)
		}
		if e.User != "" {
			line += fmt.Sprintf(" user %s", e.User)
		}
		if e.Detail != "" {
			line += "  " + e.Detail
		}
		fmt.Println(line)
	}
	return nil
}

func writeTraceFile(specs []job.Spec, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return workload.WriteCSV(f, specs)
}
