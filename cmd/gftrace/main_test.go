package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// faultLog builds a log exercising every fault-model kind plus
// non-ASCII user and detail strings (quarantine reasons quote server
// names, which are user-controlled).
func faultLog() *trace.Log {
	var l trace.Log
	l.Add(360, trace.KindRound, 0, "", "round 1")
	l.Add(720.5, trace.KindJobCrash, 3, "alice", "rollback to ckpt@700")
	l.Add(1080, trace.KindMigFail, 3, "alice", "dest busy")
	l.Add(1440, trace.KindQuarantine, 0, "", "server k80-02: 3 crashes")
	l.Add(1800, trace.KindDegrade, 0, "", "server v100-01 at 0.5×")
	l.Add(2160.25, trace.KindDegradeEnd, 0, "", "server v100-01 recovered")
	l.Add(2520, trace.KindUnquarantine, 0, "", "server k80-02 cool-off expired")
	l.Add(2880, trace.KindFinish, 7, "böb", "模型 finished ✓")
	return &l
}

func TestEventRoundTripCSV(t *testing.T) {
	l := faultLog()
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l.Events()) {
		t.Errorf("CSV round trip mismatch:\n got %+v\nwant %+v", got, l.Events())
	}
}

func TestEventRoundTripJSON(t *testing.T) {
	l := faultLog()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l.Events()) {
		t.Errorf("JSON round trip mismatch:\n got %+v\nwant %+v", got, l.Events())
	}
}

func TestEventRoundTripEmpty(t *testing.T) {
	var l trace.Log

	var csvBuf bytes.Buffer
	if err := l.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("empty CSV produced %d events", len(events))
	}

	var jsonBuf bytes.Buffer
	if err := l.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	events, err = trace.ReadJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("empty JSON produced %d events", len(events))
	}
}

// ReadCSV must reject a workload-jobs CSV (different header) rather
// than half-parse it as events.
func TestReadCSVRejectsWrongHeader(t *testing.T) {
	in := "user,model,gang,arrival_seconds,total_mb\nalice,resnet50,1,0,1000\n"
	if _, err := trace.ReadCSV(strings.NewReader(in)); err == nil {
		t.Fatal("workload CSV parsed as an event trace")
	}
}

// summarizeEvents accepts both on-disk formats end to end, including
// the fault kinds and non-ASCII strings.
func TestSummarizeEventsFiles(t *testing.T) {
	l := faultLog()
	dir := t.TempDir()
	for _, tc := range []struct {
		name  string
		write func(f *os.File) error
	}{
		{"events.csv", func(f *os.File) error { return l.WriteCSV(f) }},
		{"events.json", func(f *os.File) error { return l.WriteJSON(f) }},
	} {
		path := filepath.Join(dir, tc.name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.write(f); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
		if err := summarizeEvents(path); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	if err := summarizeEvents(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file did not error")
	}
}
