// Command gfflight inspects flight-recorder dumps (flight.json files
// written by gfsim/gfdist/gfsoak on audit violations, panics, soak
// failures, or operator triggers).
//
// Usage:
//
//	gfflight flight.json                    # human-readable summary
//	gfflight -q flight.json                 # validate only (CI smoke)
//	gfflight -chrome trace.json flight.json # spans -> Perfetto trace
//
// Exits 1 if the dump is missing or unparseable, so CI can assert
// "a forced failure produced a parseable flight.json" with -q.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/flight"
	"repro/internal/obs/span"
)

func main() {
	var (
		quiet  = flag.Bool("q", false, "validate the dump and exit; no output on success")
		chrome = flag.String("chrome", "", "write the dump's spans as Chrome trace_event JSON to this file (open in Perfetto)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gfflight [-q] [-chrome OUT.json] FLIGHT.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	d, err := flight.ReadDump(path)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		summarize(path, d)
	}
	if *chrome != "" {
		if err := writeChrome(d, *chrome); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("spans written to %s\n", *chrome)
		}
	}
}

func summarize(path string, d *flight.Dump) {
	fmt.Printf("dump       : %s\n", path)
	fmt.Printf("reason     : %s\n", d.Reason)
	if d.Detail != "" {
		fmt.Printf("detail     : %s\n", d.Detail)
	}
	fmt.Printf("written at : %s\n", d.WrittenAt)
	if n := len(d.Rounds); n == 0 {
		fmt.Println("rounds     : none retained")
	} else {
		fmt.Printf("rounds     : %d retained (%d..%d), %d dropped before window\n",
			n, d.Rounds[0].Round, d.Rounds[n-1].Round, d.RoundsDropped)
	}
	for _, r := range d.Rounds {
		faults := 0
		for _, e := range r.Events {
			if e.Kind == "fault" {
				faults++
			}
		}
		fmt.Printf("  round %-5d t=%-10.0f decisions=%-3d trades=%-3d faults=%-2d spans=%-3d users=%d\n",
			r.Round, r.SimAt, len(r.Decisions), len(r.Trades), faults, len(r.Spans), len(r.Shares))
	}
}

// writeChrome flattens every retained round's spans into one Chrome
// trace_event file; rounds keep distinct trace IDs so Perfetto shows
// them as separate slices on the same process tracks.
func writeChrome(d *flight.Dump, path string) error {
	var spans []span.Span
	for _, r := range d.Rounds {
		spans = append(spans, r.Spans...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = span.WriteChromeTrace(f, spans)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfflight:", err)
	os.Exit(1)
}
