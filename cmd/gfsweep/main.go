// Command gfsweep expands a JSON grid (one scenario × policies ×
// seeds) into simulation points, runs them on a worker pool with the
// invariant auditor enabled, and prints per-policy distribution
// statistics (mean/p50/p99 JCT, share error, utilization).
//
// Usage:
//
//	gfsweep -grid scenarios/sweep.json
//	gfsweep -grid scenarios/sweep.json -workers 8 -audit count -v
//
// The grid's "scenario" object uses the same schema as gfsim
// -scenario; "policies" and "seeds" are crossed against it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
)

func main() {
	var (
		gridIn   = flag.String("grid", "", "JSON grid file: {scenario, policies, seeds} (required)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		auditStr = flag.String("audit", "strict", "invariant auditor mode: strict | count | off")
		verbose  = flag.Bool("v", false, "print one line per completed run")
		profile  = flag.Bool("profile", false, "time scheduler phases per run and add <phase> ms columns to the table")
		csvOut   = flag.String("csv", "", "also write the summary as CSV to this file (seconds/fractions, includes rho and makespan columns)")
	)
	flag.Parse()

	if *gridIn == "" {
		fatal(fmt.Errorf("gfsweep: -grid is required"))
	}
	mode, err := core.ParseAuditMode(*auditStr)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*gridIn)
	if err != nil {
		fatal(err)
	}
	grid, err := sweep.LoadGrid(f)
	_ = f.Close() // read-only; nothing to recover from a close error
	if err != nil {
		fatal(err)
	}
	points, err := grid.Points(mode)
	if err != nil {
		fatal(err)
	}

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	results := sweep.Run(context.Background(), points, sweep.Options{Workers: w, Profile: *profile})
	elapsed := time.Since(start)

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", r.Label, r.Err)
			continue
		}
		if *verbose {
			fmt.Printf("ok %-28s rounds=%-6d finished=%-4d shareErr=%.3f util=%.3f\n",
				r.Label, r.Result.Rounds, len(r.Result.Finished),
				r.Result.MaxShareError(), r.Result.Utilization.Fraction())
		}
	}

	summary := sweep.Summarize(results)
	if err := summary.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		err = summary.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "summary CSV written to %s\n", *csvOut)
	}
	fmt.Printf("\n%d runs (%d failed) in %.2fs on %d workers, audit=%s\n",
		len(results), failed, elapsed.Seconds(), w, *auditStr)
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
