package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
)

// TestExampleGrid keeps the checked-in grid file valid: it must load,
// expand to policies × seeds points, and run clean under the strict
// auditor — exactly what `gfsweep -grid scenarios/sweep.json` does.
func TestExampleGrid(t *testing.T) {
	f, err := os.Open("../../scenarios/sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	grid, err := sweep.LoadGrid(f)
	if err != nil {
		t.Fatal(err)
	}
	points, err := grid.Points(core.AuditStrict)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(grid.Policies) * len(grid.Seeds); len(points) != want || want != 15 {
		t.Fatalf("points = %d, want %d (3 policies × 5 seeds)", len(points), want)
	}
	results := sweep.Run(context.Background(), points, sweep.Options{})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label, r.Err)
		}
	}
	sum := sweep.Summarize(results)
	if len(sum.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(sum.Groups))
	}
	var b strings.Builder
	if err := sum.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"gandiva-fair", "tiresias-l", "gandiva-rr"} {
		if !strings.Contains(b.String(), g) {
			t.Errorf("summary missing %s row:\n%s", g, b.String())
		}
	}
}
