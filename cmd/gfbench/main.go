// Command gfbench regenerates the paper's tables and figures (as
// indexed in DESIGN.md §5) on the simulated substrate and prints them
// as text tables.
//
// Usage:
//
//	gfbench                 # run every experiment (E1..E12, A1..A3)
//	gfbench -exp E10,E11    # run selected experiments
//	gfbench -quick          # ~5× shorter horizons (wider error bars)
//	gfbench -seed 7         # change the deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment IDs (empty = all)")
		quick     = flag.Bool("quick", false, "shorter horizons")
		seed      = flag.Int64("seed", 42, "deterministic seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		obsBench  = flag.Bool("obs-bench", false, "benchmark the round loop with instrumentation off vs on and write BENCH_obs.json")
		obsOut    = flag.String("obs-bench-out", "BENCH_obs.json", "output path for -obs-bench")
		ledger    = flag.Bool("ledger", false, "measure the round loop at 1k/10k/100k GPUs (spans off vs on) and print the benchmark ledger")
		ledgerOut = flag.String("ledger-out", "BENCH_core.json", "committed ledger path for -ledger -check/-update")
		check     = flag.Bool("check", false, "with -ledger: gate fresh measurements against the committed ledger; exit 1 on regression")
		update    = flag.Bool("update", false, "with -ledger: rewrite the committed ledger from fresh measurements")
		tol       = flag.Float64("tol", 0.15, "with -ledger -check: tolerated fractional regression")
		allocCap  = flag.Float64("alloc-cap", 0, "with -ledger -check: absolute ceiling on base allocs/round at the largest-GPU row (0 disables)")
	)
	flag.Parse()

	if *ledger {
		if err := ledgerMain(*ledgerOut, *seed, *update, *check, *tol, *allocCap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *obsBench {
		if err := runObsBench(*obsOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s (%s)\n", e.ID, e.Title, e.Artifact)
		}
		return
	}

	var todo []experiments.Experiment
	if *expFlag == "" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	for i, e := range todo {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		tab, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%s · regenerates %s · %.1fs)\n", e.ID, e.Artifact, time.Since(start).Seconds())
	}
}
