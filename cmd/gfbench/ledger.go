package main

// The benchmark ledger: a committed record of round-loop cost at
// three cluster scales (1k / 10k / 100k GPUs), with observability off
// and fully on (observer + span tracer + flight recorder), gated in
// CI by ci/bench_gate.sh.
//
// Methodology (also in DESIGN.md §7): each scale runs the real engine
// for a fixed number of quantum rounds, repeated ledgerReps times,
// keeping the MINIMUM ns/round and allocs/round (minimum, not mean:
// the floor is the code's cost, everything above it is machine
// noise). Allocations are counted with runtime.ReadMemStats deltas
// around Run only — construction is excluded.
//
// The gate deliberately does NOT compare wall-clock against the
// committed file: ns/round is machine-dependent, and with the
// incremental engine a round is sub-millisecond, so even the obs/base
// ns ratio is noise-dominated. Every gated metric is an allocation
// count, which is deterministic for a fixed seed:
//
//   - allocs/round vs the committed ledger (+tolerance): allocation
//     counts are hardware-independent and catch accidental O(n)
//     regressions in the round loop;
//   - the spans-on allocation tax (instrumented / baseline
//     allocs per round) vs the committed tax + tolerance:
//     observability getting relatively more expensive is a
//     regression even when absolute times shift with hardware;
//   - an optional hard ceiling on base allocs/round at the largest
//     (100k-GPU) row, so the incremental engine's win cannot quietly
//     erode back toward the per-round full rescans it replaced.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/span"
	"repro/internal/simclock"
	"repro/internal/workload"
)

const (
	ledgerSchema = 1
	ledgerReps   = 5
)

// ledgerScales are the committed measurement points. Jobs grow slower
// than GPUs on purpose: the paper's regime is cluster >> active jobs,
// and the round loop's scaling in servers is what the 100k row
// exercises.
var ledgerScales = []struct {
	gpus, users, jobsPerUser, rounds int
}{
	{1_000, 4, 50, 200},
	{10_000, 4, 100, 60},
	{100_000, 5, 100, 20},
}

// ledgerRow is one scale's measurement.
type ledgerRow struct {
	GPUs   int `json:"gpus"`
	Jobs   int `json:"jobs"`
	Rounds int `json:"rounds"`

	// Base is the plain engine; Obs adds an Observer, a span tracer,
	// and an armed flight recorder (the full -spans-out -flight
	// configuration of gfsim).
	BaseNsPerRound     float64 `json:"base_ns_per_round"`
	BaseAllocsPerRound float64 `json:"base_allocs_per_round"`
	ObsNsPerRound      float64 `json:"obs_ns_per_round"`
	ObsAllocsPerRound  float64 `json:"obs_allocs_per_round"`
}

// overhead returns the spans-on wall-clock tax as a fraction. It is
// informational only: sub-millisecond rounds make the ns ratio too
// noisy to gate on.
func (r ledgerRow) overhead() float64 {
	if r.BaseNsPerRound == 0 {
		return 0
	}
	return r.ObsNsPerRound/r.BaseNsPerRound - 1
}

// allocOverhead returns the spans-on allocation tax as a fraction.
// Unlike the ns ratio this is deterministic for a fixed seed, so the
// CI gate binds it.
func (r ledgerRow) allocOverhead() float64 {
	if r.BaseAllocsPerRound == 0 {
		return 0
	}
	return r.ObsAllocsPerRound/r.BaseAllocsPerRound - 1
}

// benchLedger is the BENCH_core.json document.
type benchLedger struct {
	Schema int         `json:"schema"`
	Seed   int64       `json:"seed"`
	Note   string      `json:"note"`
	Rows   []ledgerRow `json:"rows"`
}

const ledgerNote = "ns_per_round is informational (machine-dependent and noisy at sub-ms rounds); " +
	"the CI gate binds allocs_per_round, the obs/base allocs ratio, and the 100k-row alloc cap only"

// runLedger measures every scale. Progress goes to stderr so stdout
// stays clean for the final table.
func runLedger(seed int64) (*benchLedger, error) {
	led := &benchLedger{Schema: ledgerSchema, Seed: seed, Note: ledgerNote}
	for _, sc := range ledgerScales {
		fmt.Fprintf(os.Stderr, "ledger: measuring %d GPUs (%d jobs, %d rounds, %d reps × off/on)...\n",
			sc.gpus, sc.users*sc.jobsPerUser, sc.rounds, ledgerReps)
		row := ledgerRow{GPUs: sc.gpus, Jobs: sc.users * sc.jobsPerUser, Rounds: sc.rounds}
		var err error
		row.BaseNsPerRound, row.BaseAllocsPerRound, err = measureScale(sc.gpus, sc.users, sc.jobsPerUser, sc.rounds, seed, false)
		if err != nil {
			return nil, err
		}
		row.ObsNsPerRound, row.ObsAllocsPerRound, err = measureScale(sc.gpus, sc.users, sc.jobsPerUser, sc.rounds, seed, true)
		if err != nil {
			return nil, err
		}
		led.Rows = append(led.Rows, row)
	}
	return led, nil
}

// measureScale runs one configuration ledgerReps times and returns
// the minimum ns/round and allocs/round observed.
func measureScale(gpus, users, jobsPerUser, rounds int, seed int64, instrumented bool) (nsPerRound, allocsPerRound float64, err error) {
	if gpus%8 != 0 {
		return 0, 0, fmt.Errorf("ledger: %d GPUs not divisible across 2 generations × 4/server", gpus)
	}
	servers := gpus / 8
	cluster, err := gpu.New(
		gpu.Spec{Gen: gpu.K80, Servers: servers, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: servers, GPUsPerSrv: 4},
	)
	if err != nil {
		return 0, 0, err
	}
	zoo := workload.DefaultZoo()
	names := zoo.Names()
	var userSpecs []workload.UserSpec
	for i := 0; i < users; i++ {
		userSpecs = append(userSpecs, workload.UserSpec{
			User:    workloadUser(i),
			NumJobs: jobsPerUser, MeanK80Hours: 1000, // long-running: every round stays fully loaded
			Models: []string{names[i%len(names)], names[(i+3)%len(names)]},
		})
	}
	horizon := simclock.Time(float64(rounds) * 360)

	bestNs := 0.0
	bestAllocs := 0.0
	for rep := 0; rep < ledgerReps; rep++ {
		// Fresh specs per rep: the engine mutates jobs in place.
		specs, err := workload.Generate(zoo, workload.Config{Seed: seed, Users: userSpecs})
		if err != nil {
			return 0, 0, err
		}
		cfg := core.Config{Cluster: cluster, Specs: specs, Quantum: 360, Seed: seed}
		if instrumented {
			o := obs.New()
			o.SetTracer(span.New("gfbench", 0))
			cfg.Obs = o
			cfg.Flight = flight.New(0, os.DevNull)
		}
		sim, err := core.New(cfg, core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}))
		if err != nil {
			return 0, 0, err
		}

		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := sim.Run(horizon)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return 0, 0, err
		}
		if res.Rounds == 0 {
			return 0, 0, fmt.Errorf("ledger: %d GPUs: no rounds ran", gpus)
		}
		ns := float64(elapsed.Nanoseconds()) / float64(res.Rounds)
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(res.Rounds)
		if rep == 0 || ns < bestNs {
			bestNs = ns
		}
		if rep == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	return bestNs, bestAllocs, nil
}

func workloadUser(i int) job.UserID {
	return job.UserID(fmt.Sprintf("user%02d", i+1))
}

// renderLedger prints the ledger as an aligned table.
func renderLedger(led *benchLedger) {
	fmt.Printf("%-8s %-8s %-8s %14s %14s %14s %14s %9s\n",
		"GPUs", "jobs", "rounds", "base ns/rnd", "base allocs", "obs ns/rnd", "obs allocs", "overhead")
	for _, r := range led.Rows {
		fmt.Printf("%-8d %-8d %-8d %14.0f %14.0f %14.0f %14.0f %8.1f%%\n",
			r.GPUs, r.Jobs, r.Rounds,
			r.BaseNsPerRound, r.BaseAllocsPerRound,
			r.ObsNsPerRound, r.ObsAllocsPerRound, 100*r.overhead())
	}
}

// checkLedger compares fresh measurements against the committed
// ledger: allocs/round within tol of the committed value, the
// spans-on allocation tax within tol of the committed tax, and —
// when allocCap > 0 — base allocs/round at the largest-GPU row under
// the absolute cap. Returns the violations.
func checkLedger(fresh, committed *benchLedger, tol, allocCap float64) []string {
	var bad []string
	if committed.Schema != ledgerSchema {
		bad = append(bad, fmt.Sprintf("committed ledger schema %d, tool speaks %d (re-run -ledger -update)",
			committed.Schema, ledgerSchema))
		return bad
	}
	byGPUs := map[int]ledgerRow{}
	for _, r := range committed.Rows {
		byGPUs[r.GPUs] = r
	}
	for _, f := range fresh.Rows {
		c, ok := byGPUs[f.GPUs]
		if !ok {
			bad = append(bad, fmt.Sprintf("%d GPUs: no committed row (re-run -ledger -update)", f.GPUs))
			continue
		}
		for _, m := range []struct {
			name      string
			got, want float64
		}{
			{"base allocs/round", f.BaseAllocsPerRound, c.BaseAllocsPerRound},
			{"obs allocs/round", f.ObsAllocsPerRound, c.ObsAllocsPerRound},
		} {
			if m.want <= 0 {
				continue
			}
			if ratio := m.got/m.want - 1; ratio > tol {
				bad = append(bad, fmt.Sprintf("%d GPUs: %s %.0f is %.1f%% over committed %.0f (tol %.0f%%)",
					f.GPUs, m.name, m.got, 100*ratio, m.want, 100*tol))
			}
		}
		if ov, cov := f.allocOverhead(), c.allocOverhead(); ov > cov+tol {
			bad = append(bad, fmt.Sprintf("%d GPUs: observability alloc overhead %.1f%% exceeds committed %.1f%% + %.0f%% headroom (base %.1f allocs/round, obs %.1f)",
				f.GPUs, 100*ov, 100*cov, 100*tol, f.BaseAllocsPerRound, f.ObsAllocsPerRound))
		}
	}
	if allocCap > 0 && len(fresh.Rows) > 0 {
		top := fresh.Rows[0]
		for _, r := range fresh.Rows[1:] {
			if r.GPUs > top.GPUs {
				top = r
			}
		}
		if top.BaseAllocsPerRound > allocCap {
			bad = append(bad, fmt.Sprintf("%d GPUs: base allocs/round %.1f exceeds hard cap %.0f (the incremental engine's rescan-free budget)",
				top.GPUs, top.BaseAllocsPerRound, allocCap))
		}
	}
	return bad
}

// ledgerMain drives -ledger: measure, print, then -update (rewrite
// the committed file) and/or -check (gate against it).
func ledgerMain(path string, seed int64, update, check bool, tol, allocCap float64) error {
	fresh, err := runLedger(seed)
	if err != nil {
		return err
	}
	renderLedger(fresh)
	if update {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(fresh)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ledger written to %s\n", path)
	}
	if check {
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("ledger: read committed %s: %w", path, err)
		}
		var committed benchLedger
		if err := json.Unmarshal(b, &committed); err != nil {
			return fmt.Errorf("ledger: parse %s: %w", path, err)
		}
		if bad := checkLedger(fresh, &committed, tol, allocCap); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintln(os.Stderr, "ledger gate:", v)
			}
			return fmt.Errorf("ledger: %d regression(s) against %s", len(bad), path)
		}
		fmt.Fprintf(os.Stderr, "ledger gate passed against %s (tol %.0f%%)\n", path, 100*tol)
	}
	return nil
}
