package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// obsBenchResult is the machine-readable instrumentation-overhead
// report (BENCH_obs.json): the cost of one scheduler round with and
// without an observer attached, on a fixed mid-size scenario.
type obsBenchResult struct {
	Scenario       string   `json:"scenario"`
	Seed           int64    `json:"seed"`
	Rounds         int      `json:"rounds_per_run"`
	Uninstrumented benchRow `json:"uninstrumented"`
	Instrumented   benchRow `json:"instrumented"`
	// OverheadNsPerRound is instrumented minus uninstrumented; small
	// negatives mean the overhead is below measurement noise.
	OverheadNsPerRound float64 `json:"overhead_ns_per_round"`
}

type benchRow struct {
	Iterations     int     `json:"iterations"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
}

// runObsBench benchmarks the round loop with the observer off and on
// and writes the comparison to path as JSON.
func runObsBench(path string, seed int64) error {
	cluster, err := gpu.New(
		gpu.Spec{Gen: gpu.K80, Servers: 4, GPUsPerSrv: 4},
		gpu.Spec{Gen: gpu.V100, Servers: 4, GPUsPerSrv: 4},
	)
	if err != nil {
		return err
	}
	zoo := workload.DefaultZoo()
	specs, err := workload.Generate(zoo, workload.Config{
		Seed: seed,
		Users: []workload.UserSpec{
			{User: "a", NumJobs: 10, MeanK80Hours: 2},
			{User: "b", NumJobs: 10, MeanK80Hours: 2},
			{User: "c", NumJobs: 10, MeanK80Hours: 2},
			{User: "d", NumJobs: 10, MeanK80Hours: 2},
		},
	})
	if err != nil {
		return err
	}
	horizon := simclock.Time(24 * simclock.Hour)

	runSim := func(o *obs.Observer) (*core.Result, error) {
		sim, err := core.New(core.Config{
			Cluster: cluster, Specs: specs, Seed: seed, Obs: o,
		}, core.MustNewFairPolicy(core.FairConfig{EnableTrading: true}))
		if err != nil {
			return nil, err
		}
		return sim.Run(horizon)
	}

	// One calibration run for the round count (fixed seed: identical
	// across iterations and instrumentation settings by design).
	calib, err := runSim(nil)
	if err != nil {
		return err
	}
	rounds := calib.Rounds
	if rounds == 0 {
		return fmt.Errorf("obs-bench: calibration run made no rounds")
	}

	measure := func(instrumented bool) benchRow {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var o *obs.Observer
				if instrumented {
					o = obs.New()
				}
				if _, err := runSim(o); err != nil {
					b.Fatal(err)
				}
			}
		})
		return benchRow{
			Iterations:     r.N,
			NsPerRound:     float64(r.NsPerOp()) / float64(rounds),
			AllocsPerRound: float64(r.AllocsPerOp()) / float64(rounds),
		}
	}

	off := measure(false)
	on := measure(true)
	out := obsBenchResult{
		Scenario: fmt.Sprintf("4 users × 10 jobs, %d GPUs (K80+V100), trading on, %d rounds",
			cluster.NumDevices(), rounds),
		Seed:               seed,
		Rounds:             rounds,
		Uninstrumented:     off,
		Instrumented:       on,
		OverheadNsPerRound: on.NsPerRound - off.NsPerRound,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Printf("obs-bench: %.0f ns/round off, %.0f ns/round on (%.0f allocs/round off, %.0f on) → %s\n",
		off.NsPerRound, on.NsPerRound, off.AllocsPerRound, on.AllocsPerRound, path)
	return nil
}
