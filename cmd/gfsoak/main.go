// Command gfsoak soaks the scheduler under long randomized fault
// schedules: every iteration derives a fresh seed, runs the full
// engine under the strict auditor with the complete probabilistic
// fault stack (server crashes, a flaky server, GPU degradation, job
// crash-restart, migration failures, quarantine), and verifies the
// robustness contract — no job lost, audit clean, fairness in band,
// compensation books balanced, byte-identical rerun on the same seed.
//
// Usage:
//
//	gfsoak -seed 42 -iters 5 -hours 24
//	gfsoak -seed 7 -iters 2 -hours 6 -band 0.1
//
// Exits 1 if any iteration violates the contract.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/flight"
	"repro/internal/soak"
)

func main() {
	var (
		seed      = flag.Int64("seed", 42, "base seed; each iteration derives an independent stream")
		iters     = flag.Int("iters", 5, "number of fault schedules to soak")
		hours     = flag.Float64("hours", 24, "simulated horizon per iteration")
		band      = flag.Float64("band", 0.08, "maximum tolerated per-iteration share error")
		servers   = flag.Int("servers", 3, "K80 servers in the soak cluster")
		gpus      = flag.Int("gpus", 4, "GPUs per server")
		flightOut = flag.String("flight", "", "arm the flight recorder; the rounds leading into a contract breach are dumped to this file")
		flightN   = flag.Int("flight-rounds", 0, "flight recorder window in rounds (0 = default 64)")
	)
	flag.Parse()

	var rec *flight.Recorder
	if *flightOut != "" {
		rec = flight.New(*flightN, *flightOut)
	}
	rep, err := soak.RunSoak(soak.Config{
		Seed:       *seed,
		Iters:      *iters,
		Hours:      *hours,
		ShareBand:  *band,
		Servers:    *servers,
		GPUsPerSrv: *gpus,
		Flight:     rec,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gfsoak:", err)
		os.Exit(1)
	}
	if !rep.Clean() {
		fmt.Fprintf(os.Stderr, "gfsoak: %d contract violation(s) across %d iterations\n",
			rep.Violations(), len(rep.Iters))
		os.Exit(1)
	}
	fmt.Printf("soak passed: %d iterations, 0 violations\n", len(rep.Iters))
}
