// Command gfsim runs one cluster-scheduling scenario and reports
// fairness and efficiency metrics; optionally it dumps the event
// trace as CSV or JSON for offline analysis.
//
// Usage:
//
//	gfsim -policy gandiva-fair -users 6 -jobs 40 -hours 48
//	gfsim -policy tiresias -cluster k80=12x4,v100=12x4 -trace-out run.csv
//	gfsim -policy gandiva-fair -no-trading -quantum 60
//	gfsim -scenario scenarios/trading.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/span"
	"repro/internal/scenario"
	"repro/internal/simclock"
	"repro/internal/workload"
)

func main() {
	var (
		policyName = flag.String("policy", "gandiva-fair", "gandiva-fair | tiresias | gandiva-rr | static | fifo")
		noTrading  = flag.Bool("no-trading", false, "disable resource trading (gandiva-fair only)")
		clusterStr = flag.String("cluster", "default200", `inventory, e.g. "k80=12x4,v100=12x4" (servers x GPUs), or "default200"`)
		users      = flag.Int("users", 6, "number of users")
		jobs       = flag.Int("jobs", 40, "jobs per user")
		arrival    = flag.Float64("arrival", 2, "job arrivals per hour per user (0 = all at t=0)")
		meanHours  = flag.Float64("mean-hours", 4, "mean standalone K80 runtime per job")
		hours      = flag.Float64("hours", 48, "simulation horizon in hours")
		quantum    = flag.Float64("quantum", 360, "scheduling quantum in seconds")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		noMigrate  = flag.Bool("no-migration", false, "pin jobs to their first servers")
		traceOut   = flag.String("trace-out", "", "write the event trace to this file (.csv or .json)")
		traceCap   = flag.Int("trace-cap", 0, "keep only the newest N trace events (0 = unbounded)")
		jobsIn     = flag.String("jobs-in", "", "load the job trace from this CSV (as written by gftrace) instead of generating one")
		scenarioIn = flag.String("scenario", "", "load the ENTIRE scenario (cluster, users, policy, failures) from this JSON file; other flags are ignored")
		httpAddr   = flag.String("http", "", "serve /metrics, /healthz, /debug/sched on this address while the simulation runs")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -http address")
		flightOut  = flag.String("flight", "", "arm the flight recorder; dumps the last rounds to this file on audit violation, run error, panic, or SIGUSR1")
		flightN    = flag.Int("flight-rounds", 0, "flight recorder window in rounds (0 = default 64)")
		auditDrill = flag.Int("audit-drill", 0, "inject a synthetic audit violation at this round to exercise the flight-dump path (0 = off)")
		spansOut   = flag.String("spans-out", "", "write the final rounds' spans as Chrome trace_event JSON (open in Perfetto / chrome://tracing)")
		spansCap   = flag.Int("spans-cap", 0, "span ring capacity (0 = default 8192)")
		engineStr  = flag.String("engine", "", "round-loop engine: incremental (default) or rescan (legacy oracle; byte-identical output)")
	)
	flag.Parse()

	engine, err := core.ParseEngineMode(*engineStr)
	if err != nil {
		fatal(err)
	}

	// Observability never touches stdout: the report must stay
	// byte-identical with and without -http/-flight/-spans-out
	// (determinism guarantee, pinned by TestSpansAndFlightDoNotPerturb).
	observer, tracer, rec := startObs(obsFlags{
		addr: *httpAddr, pprof: *pprofOn,
		flightPath: *flightOut, flightRounds: *flightN,
		spans: *spansOut != "" || *flightOut != "", spansCap: *spansCap,
	})
	rec.DumpOnSignal(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})

	if *scenarioIn != "" {
		runScenario(*scenarioIn, *traceOut, *traceCap, observer, rec, *auditDrill)
		writeSpans(tracer, *spansOut)
		return
	}

	cluster, err := parseCluster(*clusterStr)
	if err != nil {
		fatal(err)
	}

	zoo := workload.DefaultZoo()
	var userSpecs []workload.UserSpec
	var userIDs []job.UserID
	names := zoo.Names()
	for i := 0; i < *users; i++ {
		u := job.UserID(fmt.Sprintf("user%02d", i+1))
		userIDs = append(userIDs, u)
		// Each user leans on a distinct slice of the zoo so the
		// speedup spread that trading exploits is present.
		models := []string{names[i%len(names)], names[(i+3)%len(names)]}
		userSpecs = append(userSpecs, workload.UserSpec{
			User: u, NumJobs: *jobs, ArrivalRatePerHour: *arrival,
			Models: models, MeanK80Hours: *meanHours,
		})
	}
	var specs []job.Spec
	if *jobsIn != "" {
		f, err := os.Open(*jobsIn)
		if err != nil {
			fatal(err)
		}
		specs, err = workload.ReadCSV(f, zoo)
		_ = f.Close() // read-only; nothing to recover from a close error
		if err != nil {
			fatal(err)
		}
		userIDs = userIDs[:0]
		seen := map[job.UserID]bool{}
		for _, sp := range specs {
			if !seen[sp.User] {
				seen[sp.User] = true
				userIDs = append(userIDs, sp.User)
			}
		}
	} else {
		var err error
		specs, err = workload.Generate(zoo, workload.Config{Seed: *seed, Users: userSpecs})
		if err != nil {
			fatal(err)
		}
	}

	policy, err := makePolicy(*policyName, !*noTrading, userIDs)
	if err != nil {
		fatal(err)
	}
	sim, err := core.New(core.Config{
		Cluster:          cluster,
		Specs:            specs,
		Quantum:          *quantum,
		Seed:             *seed,
		DisableMigration: *noMigrate,
		TraceCap:         *traceCap,
		Obs:              observer,
		Flight:           rec,
		AuditDrillRound:  *auditDrill,
		Engine:           engine,
	}, policy)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(simclock.Time(*hours * simclock.Hour))
	if err != nil {
		fatal(err)
	}
	report(res, userIDs)
	reportPhases(res)

	if *traceOut != "" {
		if err := writeTrace(res, *traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("\nevent trace (%d events) written to %s\n", res.Log.Len(), *traceOut)
	}
	writeSpans(tracer, *spansOut)
}

// obsFlags bundles the observability command-line surface.
type obsFlags struct {
	addr         string
	pprof        bool
	flightPath   string
	flightRounds int
	spans        bool
	spansCap     int
}

// startObs attaches the observability surfaces requested by flags:
// the HTTP mux (optionally with pprof and the flight recorder), a
// span tracer, and the flight recorder itself. All terminal output
// goes to stderr so stdout stays byte-identical.
func startObs(f obsFlags) (*obs.Observer, *span.Tracer, *flight.Recorder) {
	if f.addr == "" && !f.spans && f.flightPath == "" {
		return nil, nil, nil
	}
	o := obs.New()
	var tracer *span.Tracer
	if f.spans {
		tracer = span.New("gfsim", f.spansCap)
		o.SetTracer(tracer)
	}
	var rec *flight.Recorder
	if f.flightPath != "" {
		window := f.flightRounds
		if window <= 0 {
			window = flight.DefaultRounds
		}
		rec = flight.New(f.flightRounds, f.flightPath)
		fmt.Fprintf(os.Stderr, "flight recorder armed (window %d rounds, dump -> %s)\n",
			window, rec.Path())
	}
	if f.addr != "" {
		opt := obs.MuxOptions{PProf: f.pprof}
		if rec != nil {
			opt.Flight = rec
		}
		_, bound, err := obs.ServeOpts(f.addr, o, opt)
		if err != nil {
			fatal(err)
		}
		surfaces := "/metrics /healthz /debug/sched"
		if rec != nil {
			surfaces += " /debug/flight"
		}
		if f.pprof {
			surfaces += " /debug/pprof"
		}
		fmt.Fprintf(os.Stderr, "observability on http://%s (%s)\n", bound, surfaces)
	}
	return o, tracer, rec
}

// writeSpans exports the tracer's retained spans as Chrome
// trace_event JSON for Perfetto / chrome://tracing.
func writeSpans(tr *span.Tracer, path string) {
	if tr == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	err = tr.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "spans (%d retained, %d dropped) written to %s\n",
		len(tr.Spans()), tr.Dropped(), path)
}

// runScenario executes a JSON scenario file end to end.
func runScenario(path, traceOut string, traceCap int, observer *obs.Observer, rec *flight.Recorder, auditDrill int) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	sc, err := scenario.Load(f)
	_ = f.Close() // read-only; nothing to recover from a close error
	if err != nil {
		fatal(err)
	}
	cfg, policy, horizon, err := sc.Build()
	if err != nil {
		fatal(err)
	}
	cfg.TraceCap = traceCap
	cfg.Obs = observer
	cfg.Flight = rec
	cfg.AuditDrillRound = auditDrill
	sim, err := core.New(cfg, policy)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(horizon)
	if err != nil {
		fatal(err)
	}
	var users []job.UserID
	seen := map[job.UserID]bool{}
	for _, sp := range cfg.Specs {
		if !seen[sp.User] {
			seen[sp.User] = true
			users = append(users, sp.User)
		}
	}
	report(res, users)
	reportPhases(res)
	if traceOut != "" {
		if err := writeTrace(res, traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("\nevent trace (%d events) written to %s\n", res.Log.Len(), traceOut)
	}
}

func parseCluster(s string) (*gpu.Cluster, error) {
	if s == "default200" {
		return gpu.Default200(), nil
	}
	var specs []gpu.Spec
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad cluster element %q (want gen=SERVERSxGPUS)", part)
		}
		gen, err := gpu.ParseGeneration(strings.ToUpper(strings.TrimSpace(kv[0])))
		if err != nil {
			return nil, err
		}
		dims := strings.SplitN(kv[1], "x", 2)
		if len(dims) != 2 {
			return nil, fmt.Errorf("bad cluster shape %q (want SERVERSxGPUS)", kv[1])
		}
		srv, err1 := strconv.Atoi(dims[0])
		gpus, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad cluster shape %q", kv[1])
		}
		specs = append(specs, gpu.Spec{Gen: gen, Servers: srv, GPUsPerSrv: gpus})
	}
	return gpu.New(specs...)
}

func makePolicy(name string, trading bool, users []job.UserID) (core.Policy, error) {
	switch name {
	case "gandiva-fair":
		return core.NewFairPolicy(core.FairConfig{EnableTrading: trading})
	case "tiresias":
		return baselines.NewTiresias(baselines.TiresiasConfig{}), nil
	case "gandiva-rr":
		return baselines.NewGandivaRR(), nil
	case "static":
		return baselines.NewStaticQuota(users), nil
	case "fifo":
		return baselines.NewFIFO(), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func report(res *core.Result, users []job.UserID) {
	fmt.Printf("policy      : %s\n", res.Policy)
	fmt.Printf("rounds      : %d (simulated %.1f h)\n", res.Rounds, float64(res.End)/3600)
	fmt.Printf("jobs        : %d finished, %d unfinished\n", len(res.Finished), res.Unfinished)
	st := metrics.Summarize(res.JCTs())
	if st.N > 0 {
		fmt.Printf("JCT         : mean %.1f h, median %.1f h, p95 %.1f h\n",
			st.Mean/3600, st.Median/3600, st.P95/3600)
	}
	fmt.Printf("utilization : %.1f%%\n", 100*res.Utilization.Fraction())
	for _, g := range gpu.Generations() {
		if u, ok := res.UtilByGen[g]; ok {
			fmt.Printf("  %-5v     : %.1f%%\n", g, 100*u.Fraction())
		}
	}
	fmt.Printf("migrations  : %d\n", res.Migrations)
	fmt.Printf("trades      : %d\n", res.TradeCount)
	// Fault-model lines appear only when the probabilistic model was
	// on (CompDeficitByUser is nil otherwise), keeping legacy output
	// byte-identical.
	if res.CompDeficitByUser != nil {
		fmt.Printf("faults      : %d job crashes, %d failed migrations, %d quarantines\n",
			res.Crashes, res.MigrationFailures, res.Quarantines)
		debtors := make([]job.UserID, 0, len(res.CompDeficitByUser))
		for u := range res.CompDeficitByUser {
			debtors = append(debtors, u)
		}
		sort.Slice(debtors, func(i, j int) bool { return debtors[i] < debtors[j] })
		owed := 0.0
		for _, u := range debtors {
			owed += res.CompDeficitByUser[u]
		}
		fmt.Printf("compensation: %.1f GPU-h repaid, %.1f GPU-h outstanding\n",
			res.CompRepaidGPUSeconds/3600, owed/3600)
	}
	fmt.Printf("share error : %.1f%% (max deviation from water-filled entitlement)\n",
		100*res.MaxShareError())

	usage := res.TotalUsageByUser()
	ref := res.FairUsageByUser
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	fmt.Println("per-user GPU-hours (actual vs entitled):")
	for _, u := range users {
		fmt.Printf("  %-8s %8.0f %8.0f\n", u, usage[u]/3600, ref[u]/3600)
	}
}

// reportPhases prints per-phase scheduler timings to stderr (only
// present when an observer was attached via -http).
func reportPhases(res *core.Result) {
	if res.PhaseTotalsSeconds == nil || res.Rounds == 0 {
		return
	}
	fmt.Fprintln(os.Stderr, "scheduler phase cost (ms/round):")
	for _, p := range obs.AllPhases {
		if tot, ok := res.PhaseTotalsSeconds[string(p)]; ok {
			fmt.Fprintf(os.Stderr, "  %-10s %8.3f\n", p, 1e3*tot/float64(res.Rounds))
		}
	}
}

func writeTrace(res *core.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return res.Log.WriteJSON(f)
	}
	return res.Log.WriteCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfsim:", err)
	os.Exit(1)
}
