package main

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/job"
)

func TestParseClusterDefault(t *testing.T) {
	c, err := parseCluster("default200")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 200 {
		t.Fatalf("default200 has %d devices", c.NumDevices())
	}
}

func TestParseClusterCustom(t *testing.T) {
	c, err := parseCluster("k80=2x4,v100=3x8")
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity(gpu.K80) != 8 || c.Capacity(gpu.V100) != 24 {
		t.Fatalf("capacities K80=%d V100=%d", c.Capacity(gpu.K80), c.Capacity(gpu.V100))
	}
	if c.NumServers() != 5 {
		t.Fatalf("servers = %d", c.NumServers())
	}
	// Case-insensitive generation names.
	if _, err := parseCluster("P100=1x4"); err != nil {
		t.Errorf("uppercase gen rejected: %v", err)
	}
}

func TestParseClusterErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"k80",
		"k80=2",
		"k80=2x",
		"k80=ax4",
		"k80=2xb",
		"tpu=2x4",
		"k80=0x4",
	} {
		if _, err := parseCluster(bad); err == nil {
			t.Errorf("parseCluster(%q) accepted", bad)
		}
	}
}

func TestMakePolicy(t *testing.T) {
	users := []job.UserID{"a", "b"}
	wantNames := map[string]string{
		"gandiva-fair": "gandiva-fair",
		"tiresias":     "tiresias-l",
		"gandiva-rr":   "gandiva-rr",
		"static":       "static-quota",
		"fifo":         "fifo",
	}
	for arg, want := range wantNames {
		p, err := makePolicy(arg, true, users)
		if err != nil {
			t.Fatalf("%s: %v", arg, err)
		}
		if p.Name() != want {
			t.Errorf("makePolicy(%s).Name() = %q, want %q", arg, p.Name(), want)
		}
	}
	if p, _ := makePolicy("gandiva-fair", false, users); p.Name() != "gandiva-fair-no-trade" {
		t.Errorf("no-trading name = %q", p.Name())
	}
	if _, err := makePolicy("mystery", true, users); err == nil {
		t.Error("unknown policy accepted")
	}
}
